"""Results of a single run, and their persistence.

A :class:`RunResult` carries everything the analysis layer needs to
regenerate any table or figure: the binned bitrate series of the game
and iperf flows, RTT samples, loss statistics, displayed frame rate,
and the controller's target log.  It is numpy-backed in memory and
serialises to plain JSON for storage.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything measured in one run."""

    # Identity.
    system: str
    cca: str | None
    capacity_bps: float
    queue_mult: float
    seed: int
    timeline_scale: float

    # Bitrate series (shared bin centres).
    times: np.ndarray
    game_bps: np.ndarray
    iperf_bps: np.ndarray

    # Windowed summaries.
    baseline_bps: float  # mean game bitrate, baseline window
    fairness_game_bps: float  # mean game bitrate, fairness window
    fairness_iperf_bps: float  # mean iperf bitrate, fairness window
    solo_bps: float  # mean game bitrate, solo window

    # QoE measures.
    rtt_samples: np.ndarray  # (send_time, rtt) pairs
    game_loss_rate: float
    displayed_fps_contention: float
    displayed_fps_solo: float
    frames_displayed: int
    frames_dropped: int

    # Controller trace.
    target_log: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))

    # Run provenance and profiling (filled by the runner).
    qdisc: str = "droptail"
    wall_time_s: float = 0.0
    profile: dict | None = None

    # ------------------------------------------------------------------
    def rtts_in(self, t_start: float, t_end: float) -> np.ndarray:
        """RTT values for probes sent within [t_start, t_end)."""
        if self.rtt_samples.size == 0:
            return np.empty(0)
        sent = self.rtt_samples[:, 0]
        mask = (sent >= t_start) & (sent < t_end)
        return self.rtt_samples[mask, 1]

    def game_mean_bps(self, t_start: float, t_end: float) -> float:
        mask = (self.times >= t_start) & (self.times < t_end)
        if not mask.any():
            raise ValueError(f"no bins in [{t_start}, {t_end})")
        return float(self.game_bps[mask].mean())

    def iperf_mean_bps(self, t_start: float, t_end: float) -> float:
        mask = (self.times >= t_start) & (self.times < t_end)
        if not mask.any():
            raise ValueError(f"no bins in [{t_start}, {t_end})")
        return float(self.iperf_bps[mask].mean())

    def rtt_summary(self) -> dict:
        """Summary statistics of the full RTT sample set."""
        if self.rtt_samples.size == 0:
            return {"count": 0, "mean": None, "min": None, "max": None, "p95": None}
        rtts = self.rtt_samples[:, 1]
        return {
            "count": int(rtts.size),
            "mean": float(rtts.mean()),
            "min": float(rtts.min()),
            "max": float(rtts.max()),
            "p95": float(np.percentile(rtts, 95)),
        }

    @property
    def fairness_ratio(self) -> float:
        """(game - iperf) / capacity over the fairness window."""
        return (self.fairness_game_bps - self.fairness_iperf_bps) / self.capacity_bps

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        # Derived summaries are computed exactly once per serialisation.
        rtt_summary = self.rtt_summary()
        fairness_ratio = self.fairness_ratio
        return {
            "system": self.system,
            "cca": self.cca,
            "capacity_bps": self.capacity_bps,
            "queue_mult": self.queue_mult,
            "seed": self.seed,
            "timeline_scale": self.timeline_scale,
            "times": self.times.tolist(),
            "game_bps": self.game_bps.tolist(),
            "iperf_bps": self.iperf_bps.tolist(),
            "baseline_bps": self.baseline_bps,
            "fairness_game_bps": self.fairness_game_bps,
            "fairness_iperf_bps": self.fairness_iperf_bps,
            "solo_bps": self.solo_bps,
            "rtt_samples": self.rtt_samples.tolist(),
            "game_loss_rate": self.game_loss_rate,
            "displayed_fps_contention": self.displayed_fps_contention,
            "displayed_fps_solo": self.displayed_fps_solo,
            "frames_displayed": self.frames_displayed,
            "frames_dropped": self.frames_dropped,
            "target_log": self.target_log.tolist(),
            "qdisc": self.qdisc,
            "wall_time_s": self.wall_time_s,
            "profile": self.profile,
            # Derived summaries, for consumers that never load the arrays.
            "rtt_summary": rtt_summary,
            "fairness_ratio": fairness_ratio,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            system=data["system"],
            cca=data["cca"],
            capacity_bps=data["capacity_bps"],
            queue_mult=data["queue_mult"],
            seed=data["seed"],
            timeline_scale=data["timeline_scale"],
            times=np.asarray(data["times"]),
            game_bps=np.asarray(data["game_bps"]),
            iperf_bps=np.asarray(data["iperf_bps"]),
            baseline_bps=data["baseline_bps"],
            fairness_game_bps=data["fairness_game_bps"],
            fairness_iperf_bps=data["fairness_iperf_bps"],
            solo_bps=data["solo_bps"],
            rtt_samples=np.asarray(data["rtt_samples"]).reshape(-1, 2),
            game_loss_rate=data["game_loss_rate"],
            displayed_fps_contention=data["displayed_fps_contention"],
            displayed_fps_solo=data["displayed_fps_solo"],
            frames_displayed=data["frames_displayed"],
            frames_dropped=data["frames_dropped"],
            target_log=np.asarray(data["target_log"]).reshape(-1, 2),
            qdisc=data.get("qdisc", "droptail"),
            wall_time_s=data.get("wall_time_s", 0.0),
            profile=data.get("profile"),
        )

    def save(self, path: str | Path) -> None:
        """Write the JSON serialisation atomically.

        The text lands in a temporary file in the destination directory
        and is published with ``os.replace``, so an interrupted save
        can never leave a truncated file at ``path``.  Compact
        separators keep the dominant cost -- the bitrate/RTT arrays --
        about 10% smaller than json's default ", "/": " padding.
        """
        path = Path(path)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(self.to_dict(), separators=(",", ":")))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

"""The parameter grid of Table 2 and the paper's striped run order.

The paper iterates, outer loop to inner:
``[1..15 iterations] [Cubic, BBR] [35, 25, 15 Mb/s] [7x, 2x, 0.5x]
[Stadia, GeForce, Luna]`` -- striping across game systems so that the
three systems of one condition run as close together in time as
possible.  In simulation there is no time-of-day drift, but the same
ordering is preserved (it also determines seed assignment, so a given
iteration index sees the same content across systems, mirroring the
scripted-gameplay design).
"""

from __future__ import annotations

from typing import Iterator

from repro.experiments.config import RunConfig
from repro.experiments.profiles import QUICK, Timeline

__all__ = [
    "SYSTEM_NAMES",
    "CCAS",
    "CAPACITIES",
    "QUEUE_MULTS",
    "condition_grid",
    "striped_order",
]

#: Presentation order (Stadia, GeForce, Luna), as in the paper.
SYSTEM_NAMES = ("stadia", "geforce", "luna")
#: Competing congestion control algorithms.
CCAS = ("cubic", "bbr")
#: Capacity limits, Mb/s -> bps, in the paper's outer-loop order.
CAPACITIES = (35e6, 25e6, 15e6)
#: Queue sizes in BDP multiples, in the paper's loop order.
QUEUE_MULTS = (7.0, 2.0, 0.5)


def condition_grid(
    ccas=CCAS,
    capacities=CAPACITIES,
    queue_mults=QUEUE_MULTS,
    systems=SYSTEM_NAMES,
) -> list[tuple[str, float, float, str]]:
    """All (cca, capacity, queue_mult, system) cells, in loop order."""
    return [
        (cca, capacity, queue, system)
        for cca in ccas
        for capacity in capacities
        for queue in queue_mults
        for system in systems
    ]


def striped_order(
    iterations: int,
    timeline: Timeline = QUICK,
    ccas=CCAS,
    capacities=CAPACITIES,
    queue_mults=QUEUE_MULTS,
    systems=SYSTEM_NAMES,
    base_seed: int = 0,
) -> Iterator[RunConfig]:
    """Yield run configs in the paper's striped order.

    Within one iteration every system of a condition shares the same
    seed, the analogue of the identical scripted gameplay; distinct
    conditions and iterations get distinct seeds.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    for iteration in range(iterations):
        for cca_index, cca in enumerate(ccas):
            for cap_index, capacity in enumerate(capacities):
                for queue_index, queue in enumerate(queue_mults):
                    seed = (
                        base_seed
                        + 10_000 * iteration
                        + 1_000 * cca_index
                        + 100 * cap_index
                        + 10 * queue_index
                    )
                    for system in systems:
                        yield RunConfig(
                            system=system,
                            capacity_bps=capacity,
                            queue_mult=queue,
                            cca=cca,
                            seed=seed,
                            timeline=timeline,
                        )

"""In-process vectorised multi-seed execution.

The campaign grid runs K seeds of every condition, and each of those
runs is an independent simulation of the *same* topology -- only the
RNG seed differs.  Dispatching them as separate pool tasks pays per-run
overhead K times: task pickling, store round-trips, topology input
construction, and allocator warm-up.  This module executes a whole
seed batch inside one interpreter:

- the immutable topology inputs (:class:`~repro.testbed.tc.RouterConfig`
  and the :class:`~repro.testbed.systems.SystemProfile`) are constructed
  once and shared across seeds (they are pure functions of the
  condition, so sharing cannot change any measurement);
- the store is consulted per seed (cache-first) and written per result
  -- **one stored object per run**, byte-identical fingerprints and
  payloads to per-run dispatch, so batched and unbatched campaigns are
  interchangeable at the store level;
- a ``timeout_s`` budget covers the whole batch, with the remaining
  budget re-measured before each seed so an early seed overrunning
  still aborts the batch cooperatively.

The entry points are :func:`run_seeds` (one config, many seeds -- the
engine behind ``run_single(seeds=[...])`` and ``repro-gsnet run
--seeds``) and :func:`run_condition_batch` (pre-expanded configs -- the
engine behind the campaign scheduler's ``seed_batch`` dispatch).
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter

from repro.experiments.config import RunConfig
from repro.experiments.results import RunResult
from repro.experiments.runner import _execute
from repro.streaming.systems import get_system
from repro.testbed.tc import RouterConfig

__all__ = ["run_seeds", "run_condition_batch", "seed_variants"]


def seed_variants(config: RunConfig, seeds) -> list[RunConfig]:
    """Expand one config into per-seed configs (order preserved)."""
    return [
        config if seed == config.seed else replace(config, seed=seed)
        for seed in seeds
    ]


def run_seeds(
    config: RunConfig,
    seeds,
    store=None,
    timeout_s: float | None = None,
    max_events: int | None = None,
) -> list[RunResult]:
    """Run ``config`` once per seed, in seed order, in this process."""
    return run_condition_batch(
        seed_variants(config, seeds),
        store=store, timeout_s=timeout_s, max_events=max_events,
    )


def run_condition_batch(
    configs: list[RunConfig],
    store=None,
    timeout_s: float | None = None,
    max_events: int | None = None,
) -> list[RunResult]:
    """Execute ``configs`` sequentially with shared topology inputs.

    Results come back in config order.  The topology inputs are shared
    only while consecutive configs agree on the condition fields; a
    mixed batch silently falls back to per-config construction, so the
    function is safe for any config list.
    """
    if not configs:
        return []
    deadline = None if timeout_s is None else perf_counter() + timeout_s
    shared_router: RouterConfig | None = None
    shared_profile = None
    shared_key: tuple | None = None
    results: list[RunResult] = []
    for config in configs:
        if store is not None:
            cached = store.get(config)
            if cached is not None:
                results.append(cached)
                continue
        key = (config.system, config.capacity_bps, config.queue_mult)
        if key != shared_key:
            shared_key = key
            shared_router = RouterConfig(
                rate_bps=config.capacity_bps, queue_mult=config.queue_mult
            )
            shared_profile = get_system(config.system)
        wall_start = perf_counter()
        remaining = None if deadline is None else deadline - wall_start
        result = _execute(
            config, None, None, None, store,
            remaining, max_events, wall_start,
            router=shared_router, profile=shared_profile,
        )
        results.append(result)
    return results

"""Experiment timelines.

The paper's run is nine minutes of gameplay: three minutes solo, three
minutes against the iperf TCP flow (185 s - 370 s), three minutes of
recovery.  Its analysis windows are fixed offsets of that timeline:

- baseline ("original bitrate"): 125-185 s
- adjusted bitrate: 310-370 s
- fairness window: 220-370 s (excludes the initial response)

A :class:`Timeline` scales the whole schedule by one factor so the same
experiment can run at paper scale (``PAPER``), at one-third scale for
interactive work and benchmarks (``QUICK``), or at one-ninth scale for
tests (``SMOKE``).  Absolute numbers shrink with the scale but the
relative structure -- and therefore who-wins/who-defers results -- is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Timeline", "PAPER", "QUICK", "SMOKE"]


@dataclass(frozen=True)
class Timeline:
    """All time anchors of one experimental run, in seconds."""

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    # -- run structure ---------------------------------------------------
    @property
    def iperf_start(self) -> float:
        return 185.0 * self.scale

    @property
    def iperf_stop(self) -> float:
        return 370.0 * self.scale

    @property
    def end(self) -> float:
        return 555.0 * self.scale

    # -- analysis windows --------------------------------------------------
    @property
    def baseline_window(self) -> tuple[float, float]:
        """The "original bitrate" window (125-185 s at paper scale)."""
        return 125.0 * self.scale, 185.0 * self.scale

    @property
    def adjusted_window(self) -> tuple[float, float]:
        """The settled contention window (310-370 s at paper scale)."""
        return 310.0 * self.scale, 370.0 * self.scale

    @property
    def fairness_window(self) -> tuple[float, float]:
        """The Figure 3 window (220-370 s at paper scale)."""
        return 220.0 * self.scale, 370.0 * self.scale

    @property
    def contention_window(self) -> tuple[float, float]:
        """The full with-iperf window (Tables 4 and 5)."""
        return self.iperf_start, self.iperf_stop

    @property
    def solo_window(self) -> tuple[float, float]:
        """Steady-state gameplay window for solo runs (Tables 1 and 3)."""
        return self.baseline_window

    @property
    def bin_width(self) -> float:
        """Bitrate bin width; the paper uses 0.5 s at full scale."""
        return max(0.5 * self.scale, 0.1)


#: The paper's full 9-minute schedule.
PAPER = Timeline(scale=1.0)

#: One-third scale: ~3 minute runs; the benchmark default.
QUICK = Timeline(scale=1.0 / 3.0)

#: One-ninth scale: ~1 minute runs for tests.
SMOKE = Timeline(scale=1.0 / 9.0)

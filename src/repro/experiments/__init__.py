"""Experiment harness: the paper's measurement campaign.

- :mod:`repro.experiments.profiles` -- timelines: the paper's 9-minute
  run (competing flow from 185 s to 370 s) and scaled-down variants for
  quick runs and tests.
- :mod:`repro.experiments.config` -- one run's configuration.
- :mod:`repro.experiments.conditions` -- the full parameter grid of
  Table 2 and the paper's striped execution order.
- :mod:`repro.experiments.runner` -- run one configuration, extract a
  :class:`~repro.experiments.results.RunResult`.
- :mod:`repro.experiments.campaign` -- run grids of conditions with
  multiple iterations and aggregate per condition.
- :mod:`repro.experiments.multirun` -- in-process multi-seed execution
  sharing one topology build per condition.
"""

from repro.experiments.campaign import Campaign, ConditionResult
from repro.experiments.conditions import (
    CAPACITIES,
    CCAS,
    QUEUE_MULTS,
    SYSTEM_NAMES,
    condition_grid,
    striped_order,
)
from repro.experiments.config import RunConfig
from repro.experiments.multirun import run_condition_batch, run_seeds
from repro.experiments.profiles import PAPER, QUICK, SMOKE, Timeline
from repro.experiments.results import RunResult
from repro.experiments.runner import RunTimeout, run_single

__all__ = [
    "CAPACITIES",
    "CCAS",
    "Campaign",
    "ConditionResult",
    "PAPER",
    "QUEUE_MULTS",
    "QUICK",
    "RunConfig",
    "RunResult",
    "RunTimeout",
    "SMOKE",
    "SYSTEM_NAMES",
    "Timeline",
    "condition_grid",
    "run_condition_batch",
    "run_seeds",
    "run_single",
    "striped_order",
]

"""Run one experiment configuration end to end.

Mirrors the paper's per-round procedure (Section 3.4): configure the
router, start captures and probes, play the game, start iperf three
minutes in, stop it three minutes later, keep playing three more
minutes, then collect all measurements into a
:class:`~repro.experiments.results.RunResult`.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import RunConfig
from repro.experiments.results import RunResult
from repro.testbed.tc import RouterConfig
from repro.testbed.topology import IPERF_FLOW, GameStreamingTestbed

__all__ = ["run_single"]


def run_single(config: RunConfig) -> RunResult:
    """Execute one run and return its measurements."""
    timeline = config.timeline
    router = RouterConfig(rate_bps=config.capacity_bps, queue_mult=config.queue_mult)
    testbed = GameStreamingTestbed(
        config.system,
        router,
        seed=config.seed,
        competing_cca=config.cca,
        qdisc=config.qdisc,
    )

    testbed.start_game()
    if config.competing:
        testbed.schedule_iperf(timeline.iperf_start, timeline.iperf_stop)
    testbed.run(until=timeline.end)

    return _collect(config, testbed)


def _collect(config: RunConfig, testbed: GameStreamingTestbed) -> RunResult:
    timeline = config.timeline
    game_flow = testbed.game_flow
    times, game_bps = testbed.capture.bitrate_series(
        game_flow, 0.0, timeline.end, timeline.bin_width
    )
    _, iperf_bps = testbed.capture.bitrate_series(
        IPERF_FLOW, 0.0, timeline.end, timeline.bin_width
    )

    baseline_lo, baseline_hi = timeline.baseline_window
    fair_lo, fair_hi = timeline.fairness_window
    solo_lo, solo_hi = timeline.solo_window
    cont_lo, cont_hi = timeline.contention_window

    client = testbed.client
    return RunResult(
        system=config.system,
        cca=config.cca,
        capacity_bps=config.capacity_bps,
        queue_mult=config.queue_mult,
        seed=config.seed,
        timeline_scale=timeline.scale,
        times=times,
        game_bps=game_bps,
        iperf_bps=iperf_bps,
        baseline_bps=testbed.capture.throughput_bps(game_flow, baseline_lo, baseline_hi),
        fairness_game_bps=testbed.capture.throughput_bps(game_flow, fair_lo, fair_hi),
        fairness_iperf_bps=testbed.capture.throughput_bps(IPERF_FLOW, fair_lo, fair_hi),
        solo_bps=testbed.capture.throughput_bps(game_flow, solo_lo, solo_hi),
        rtt_samples=np.asarray(testbed.prober.samples).reshape(-1, 2),
        game_loss_rate=testbed.game_loss_rate(),
        displayed_fps_contention=client.displayed_fps(cont_lo, cont_hi),
        displayed_fps_solo=client.displayed_fps(solo_lo, solo_hi),
        frames_displayed=client.frames_displayed,
        frames_dropped=client.frames_dropped,
        target_log=np.asarray(testbed.server.target_log).reshape(-1, 2),
    )

"""Run one experiment configuration end to end.

Mirrors the paper's per-round procedure (Section 3.4): configure the
router, start captures and probes, play the game, start iperf three
minutes in, stop it three minutes later, keep playing three more
minutes, then collect all measurements into a
:class:`~repro.experiments.results.RunResult`.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.experiments.config import RunConfig
from repro.experiments.results import RunResult
from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler
from repro.obs.trace import Tracer
from repro.testbed.tc import RouterConfig
from repro.testbed.topology import IPERF_FLOW, GameStreamingTestbed

__all__ = ["run_single", "RunTimeout"]


class RunTimeout(RuntimeError):
    """A run exceeded its cooperative wall-clock or event budget.

    Raised from inside the event loop by the deadline guard that
    :func:`run_single` installs when ``timeout_s`` or ``max_events`` is
    given.  The campaign scheduler treats it as a retryable failure.
    """


def run_single(
    config: RunConfig,
    tracer: Tracer | None = None,
    metrics: MetricsRecorder | None = None,
    sim_profiler: SimProfiler | None = None,
    store=None,
    timeout_s: float | None = None,
    max_events: int | None = None,
    seeds=None,
) -> RunResult:
    """Execute one run and return its measurements.

    Args:
        config: the run to execute.
        tracer: optional tracepoint bus; trace records carry sim time
            only, so identical configs produce identical traces.
        metrics: optional unbound metrics recorder; bound and started
            by the testbed.
        sim_profiler: optional event-loop profiler, attached for the
            duration of the run.
        store: optional :class:`~repro.store.runstore.RunStore`; a
            stored result for this config is returned without
            simulating (only when no tracer/metrics/profiler is
            requested -- those need the run to actually happen), and a
            fresh result is persisted before returning.
        timeout_s: cooperative wall-clock budget for the whole run
            (setup included); when exceeded, a guard event raises
            :class:`RunTimeout` from inside the event loop.  The guard
            is a no-op callback on the simulation clock, so it never
            perturbs traffic dynamics or measurements.
        max_events: like ``timeout_s`` but bounding the number of
            dispatched simulation events (a runaway-run backstop that
            is deterministic across hosts).
        seeds: optional list of seeds; runs every seed of this
            condition in-process with shared topology objects (see
            :mod:`repro.experiments.multirun`) and returns a **list**
            of results instead of one.  Incompatible with the per-run
            observers (tracer/metrics/profiler), which bind to a single
            testbed.
    """
    if seeds is not None:
        if tracer is not None or metrics is not None or sim_profiler is not None:
            raise ValueError(
                "seeds batching cannot carry per-run observers; "
                "run each seed individually to trace or profile it"
            )
        from repro.experiments.multirun import run_seeds

        return run_seeds(
            config, seeds,
            store=store, timeout_s=timeout_s, max_events=max_events,
        )
    if store is not None:
        observed = tracer is not None or metrics is not None or sim_profiler is not None
        if not observed:
            cached = store.get(config)
            if cached is not None:
                return cached
    return _execute(
        config, tracer, metrics, sim_profiler, store, timeout_s,
        max_events, perf_counter(),
    )


def _execute(
    config: RunConfig,
    tracer: Tracer | None,
    metrics: MetricsRecorder | None,
    sim_profiler: SimProfiler | None,
    store,
    timeout_s: float | None,
    max_events: int | None,
    wall_start: float,
    router: RouterConfig | None = None,
    profile=None,
) -> RunResult:
    """Build the testbed, run the timeline, collect the result.

    The cache-bypass core of :func:`run_single`.  ``router`` and
    ``profile`` allow a multi-seed batch to construct the immutable
    topology inputs once and share them across seeds -- they are pure
    functions of the config's condition fields, so sharing cannot
    change any measurement.
    """
    timeline = config.timeline
    if router is None:
        router = RouterConfig(
            rate_bps=config.capacity_bps, queue_mult=config.queue_mult
        )
    testbed = GameStreamingTestbed(
        profile if profile is not None else config.system,
        router,
        seed=config.seed,
        competing_cca=config.cca,
        qdisc=config.qdisc,
        tracer=tracer,
        metrics=metrics,
    )
    if tracer is not None and tracer.enabled:
        tracer.emit(
            "run.config", 0.0,
            system=config.system, cca=config.cca,
            capacity_bps=config.capacity_bps, queue_mult=config.queue_mult,
            seed=config.seed, qdisc=config.qdisc,
            timeline_scale=timeline.scale, end=timeline.end,
        )
    if sim_profiler is not None:
        testbed.sim.attach_profiler(sim_profiler)
    if timeout_s is not None or max_events is not None:
        _install_deadline_guard(
            testbed.sim, config, timeline,
            None if timeout_s is None else wall_start + timeout_s,
            max_events,
        )

    try:
        testbed.start_game()
        if config.competing:
            testbed.schedule_iperf(timeline.iperf_start, timeline.iperf_stop)
        testbed.run(until=timeline.end)
    finally:
        if sim_profiler is not None:
            testbed.sim.detach_profiler()
            sim_profiler.finish()

    if tracer is not None and tracer.enabled:
        tracer.emit(
            "run.end", testbed.sim.now,
            events=testbed.sim.events_processed,
            frames=testbed.server.frames_sent,
        )

    result = _collect(config, testbed)
    result.wall_time_s = perf_counter() - wall_start
    if sim_profiler is not None:
        result.profile = sim_profiler.summary()
    if store is not None:
        store.put(config, result)
    return result


def _install_deadline_guard(
    sim, config: RunConfig, timeline, deadline: float | None,
    max_events: int | None,
) -> None:
    """Schedule a recurring in-loop budget check.

    The guard piggybacks on the simulation clock (a few hundred checks
    per run) because the event loop is synchronous: nothing else gets a
    chance to notice a blown budget while a run is executing.  The
    callback touches no simulation state, so runs with and without a
    guard produce identical measurements.
    """
    interval = max(timeline.end / 256.0, 1e-3)

    def guard() -> None:
        if deadline is not None and perf_counter() >= deadline:
            raise RunTimeout(
                f"run {config.label} exceeded its wall-clock budget"
            )
        if max_events is not None and sim.events_processed >= max_events:
            raise RunTimeout(
                f"run {config.label} exceeded its {max_events}-event budget"
            )
        sim.schedule(interval, guard)

    sim.schedule(interval, guard)


def _collect(config: RunConfig, testbed: GameStreamingTestbed) -> RunResult:
    timeline = config.timeline
    game_flow = testbed.game_flow
    times, game_bps = testbed.capture.bitrate_series(
        game_flow, 0.0, timeline.end, timeline.bin_width
    )
    _, iperf_bps = testbed.capture.bitrate_series(
        IPERF_FLOW, 0.0, timeline.end, timeline.bin_width
    )

    baseline_lo, baseline_hi = timeline.baseline_window
    fair_lo, fair_hi = timeline.fairness_window
    solo_lo, solo_hi = timeline.solo_window
    cont_lo, cont_hi = timeline.contention_window

    client = testbed.client
    return RunResult(
        system=config.system,
        cca=config.cca,
        capacity_bps=config.capacity_bps,
        queue_mult=config.queue_mult,
        seed=config.seed,
        timeline_scale=timeline.scale,
        times=times,
        game_bps=game_bps,
        iperf_bps=iperf_bps,
        baseline_bps=testbed.capture.throughput_bps(game_flow, baseline_lo, baseline_hi),
        fairness_game_bps=testbed.capture.throughput_bps(game_flow, fair_lo, fair_hi),
        fairness_iperf_bps=testbed.capture.throughput_bps(IPERF_FLOW, fair_lo, fair_hi),
        solo_bps=testbed.capture.throughput_bps(game_flow, solo_lo, solo_hi),
        rtt_samples=np.asarray(testbed.prober.samples).reshape(-1, 2),
        game_loss_rate=testbed.game_loss_rate(),
        displayed_fps_contention=client.displayed_fps(cont_lo, cont_hi),
        displayed_fps_solo=client.displayed_fps(solo_lo, solo_hi),
        frames_displayed=client.frames_displayed,
        frames_dropped=client.frames_dropped,
        target_log=np.asarray(testbed.server.target_log).reshape(-1, 2),
        qdisc=config.qdisc,
    )

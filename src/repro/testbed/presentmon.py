"""PresentMon-style frame presentation logging.

The paper runs Intel's PresentMon on the game client to record the
display frame rate.  Our client records the presentation time of every
completed frame; this module turns that log into the windowed frame
rates Table 5 reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PresentMonLog"]


class PresentMonLog:
    """Windowed frame-rate statistics over a presentation-time log."""

    def __init__(self, display_times: list[float]):
        self.display_times = display_times

    def mean_fps(self, t_start: float, t_end: float) -> float:
        """Average presented frames per second over [t_start, t_end)."""
        if t_end <= t_start:
            raise ValueError("t_end must be after t_start")
        times = np.asarray(self.display_times)
        if len(times) == 0:
            return 0.0
        shown = int(((times >= t_start) & (times < t_end)).sum())
        return shown / (t_end - t_start)

    def fps_series(
        self, t_start: float, t_end: float, bin_width: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-bin frame rates: returns (bin_centres, fps)."""
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        edges = np.arange(t_start, t_end + bin_width / 2, bin_width)
        if len(edges) < 2:
            raise ValueError("window shorter than one bin")
        times = np.asarray(self.display_times)
        counts, _ = (
            np.histogram(times, bins=edges)
            if len(times)
            else (np.zeros(len(edges) - 1), edges)
        )
        centres = (edges[:-1] + edges[1:]) / 2
        return centres, counts / bin_width

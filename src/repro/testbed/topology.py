"""The dumbbell topology of the paper's Figure 1.

A game-streaming server and an iperf server sit behind a shared
bottleneck (the Raspberry Pi router's shaped egress) leading to the
game client and iperf client.  All downlink traffic -- media, TCP data,
and ping replies -- shares one bottleneck queue; the uplink (ACKs,
feedback, probes) is far below its capacity and is modelled as pure
delay.

Per-flow ``netem`` delay equalises every flow's base RTT at ~16.5 ms,
exactly as the paper does for Stadia (+4.5 ms), GeForce (+12 ms) and
iperf (+15 ms); we apply the equalised half-RTT directly on each
direction.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRecorder
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.aqm import CoDelQueue, FQCoDelQueue
from repro.sim.engine import Simulator
from repro.sim.flowstats import StatsRegistry
from repro.sim.link import Link
from repro.sim.netem import NetemDelay, NetemLoss
from repro.sim.node import Demux
from repro.sim.queues import DropTailQueue
from repro.streaming.client import GameStreamClient
from repro.streaming.server import GameStreamServer
from repro.streaming.systems import SystemProfile, get_system
from repro.testbed.capture import PacketCapture
from repro.testbed.iperf import IperfFlow
from repro.testbed.ping import PingProber, PingReflector
from repro.testbed.tc import RouterConfig

__all__ = ["GameStreamingTestbed", "QUEUE_DISCIPLINES"]

#: Supported bottleneck queue disciplines.
QUEUE_DISCIPLINES = ("droptail", "codel", "fq_codel")

#: Flow id used for the RTT probe.
PING_FLOW = "ping"
#: Flow id used for the competing TCP download.
IPERF_FLOW = "iperf"


class _ClientIngress:
    """Fused client-side arrival point.

    Functionally a ``Tap`` whose observer feeds the packet capture and
    the stats registry before handing off to the client demux -- but
    that chain costs five frames per packet (observer, capture.tap,
    registry lookup, FlowStats.on_receive, Demux.receive), and every
    downlink packet of every flow pays it.  This sink interns, per
    flow, the capture list appenders, the flow's counter object and the
    routed endpoint's ``receive``, then does the whole arrival in one
    call.  Counters, capture records and routing semantics are
    identical to the unfused chain.

    Routes must be registered before the first packet of a flow arrives
    (the testbed wires everything in its constructor, so this holds by
    construction); re-routing a flow afterwards is not supported.
    """

    __slots__ = ("sim", "capture", "stats", "demux", "_fast")

    def __init__(self, sim, capture, stats, demux):
        self.sim = sim
        self.capture = capture
        self.stats = stats
        self.demux = demux
        self._fast: dict[str, tuple] = {}

    def _intern(self, flow: str) -> tuple:
        trace = self.capture.flow_trace(flow)
        entry = (
            trace.times.append,
            trace.sizes.append,
            self.stats.for_flow(flow),
            self.demux.sink_for(flow).receive,
        )
        self._fast[flow] = entry
        return entry

    def receive(self, pkt) -> None:
        entry = self._fast.get(pkt.flow)
        if entry is None:
            entry = self._intern(pkt.flow)
        times_append, sizes_append, stats, endpoint_receive = entry
        size = pkt.size
        times_append(self.sim.now)
        sizes_append(size)
        stats.packets_received += 1
        stats.bytes_received += size
        endpoint_receive(pkt)


class GameStreamingTestbed:
    """One fully wired experiment run.

    Args:
        system: game system name or profile (stadia / geforce / luna).
        router: bottleneck configuration (rate, queue multiple, RTT).
        seed: per-run seed driving complexity, noise and jitter.
        competing_cca: "cubic" / "bbr" / "reno" / "vegas", None for a
            solo run, or a sequence of CCA names for the multi-flow
            ablation (the paper's future work); flows are then named
            ``iperf``, ``iperf2``, ``iperf3``, ...
        qdisc: bottleneck queue discipline (the paper uses droptail;
            codel / fq_codel serve the future-work ablation).
        ping_interval: RTT probe period, seconds.
        random_loss: independent downlink loss probability
            (``netem loss P%``), for the loss-resilience ablation.
        tracer: tracepoint bus threaded through every instrumented
            component; when enabled a periodic ``queue.occupancy``
            sampler also runs.
        metrics: optional (unbound) metrics recorder; the testbed binds
            it to its simulator, registers the standard gauges and
            counters, and starts it on :meth:`start_game`.
        sample_interval: period of the occupancy sampler, seconds.
    """

    def __init__(
        self,
        system: str | SystemProfile,
        router: RouterConfig,
        seed: int = 0,
        competing_cca: str | list[str] | tuple[str, ...] | None = None,
        qdisc: str = "droptail",
        ping_interval: float = 0.2,
        random_loss: float = 0.0,
        tracer: Tracer | None = None,
        metrics: MetricsRecorder | None = None,
        sample_interval: float = 0.1,
    ):
        if qdisc not in QUEUE_DISCIPLINES:
            raise ValueError(
                f"unknown qdisc {qdisc!r}; options: {QUEUE_DISCIPLINES}"
            )
        self.profile = get_system(system) if isinstance(system, str) else system
        self.router = router
        self.seed = seed
        self.qdisc = qdisc
        self.rng = np.random.default_rng(seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.sample_interval = sample_interval

        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.capture = PacketCapture(self.sim)

        one_way = router.rtt / 2.0
        if competing_cca is None:
            competitor_ccas: list[str] = []
        elif isinstance(competing_cca, str):
            competitor_ccas = [competing_cca]
        else:
            competitor_ccas = list(competing_cca)
        iperf_flows = [
            IPERF_FLOW if i == 0 else f"{IPERF_FLOW}{i + 1}"
            for i in range(len(competitor_ccas))
        ]

        # --- Downlink: shared bottleneck --------------------------------
        self.client_demux = Demux()
        client_ingress = _ClientIngress(
            self.sim, self.capture, self.stats, self.client_demux
        )
        downlink_sink = client_ingress
        self.loss_stage: NetemLoss | None = None
        if random_loss > 0:
            self.loss_stage = NetemLoss(
                self.sim, random_loss, sink=client_ingress, rng=self.rng,
                on_drop=self.stats.on_drop,
            )
            downlink_sink = self.loss_stage
        self.queue = self._make_queue()
        self.bottleneck = Link(
            self.sim,
            rate_bps=router.rate_bps,
            delay=0.0,
            sink=downlink_sink,
            queue=self.queue,
            tracer=self.tracer,
        )
        # Per-flow propagation ahead of the bottleneck.
        self._down_netem: dict[str, NetemDelay] = {}
        for flow in [self.profile.name, PING_FLOW, *iperf_flows]:
            self._down_netem[flow] = NetemDelay(
                self.sim, delay=one_way, sink=self.bottleneck
            )

        # --- Uplink: pure delay to a server-side demux -------------------
        self.server_demux = Demux()
        self._uplink = NetemDelay(self.sim, delay=one_way, sink=self.server_demux)

        # --- Game session -------------------------------------------------
        self.server = GameStreamServer(
            self.sim,
            self.profile.name,
            self.profile,
            path=self._down_netem[self.profile.name],
            rng=self.rng,
            on_send=self.stats.send_hook(self.profile.name),
            tracer=self.tracer,
        )
        self.client = GameStreamClient(
            self.sim, self.profile.name, self.profile, feedback_path=self._uplink
        )
        self.server_demux.route(self.profile.name, self.server)
        self.client_demux.route(self.profile.name, self.client)

        # --- RTT probe ----------------------------------------------------
        self.prober = PingProber(
            self.sim, PING_FLOW, uplink_path=self._uplink, interval=ping_interval
        )
        reflector = PingReflector(self._down_netem[PING_FLOW])
        self.server_demux.route(PING_FLOW, reflector)
        self.client_demux.route(PING_FLOW, self.prober)

        # --- Competing TCP flow(s) ------------------------------------------
        self.iperfs: list[IperfFlow] = []
        for flow, cca in zip(iperf_flows, competitor_ccas):
            iperf = IperfFlow(
                self.sim,
                flow,
                cca=cca,
                downlink_path=self._down_netem[flow],
                uplink_path=self._uplink,
                on_send=self.stats.send_hook(flow),
                tracer=self.tracer,
            )
            self.server_demux.route(flow, iperf.sender)
            self.client_demux.route(flow, iperf.receiver)
            self.iperfs.append(iperf)
        self.iperf: IperfFlow | None = self.iperfs[0] if self.iperfs else None

        if self.metrics is not None:
            self._register_metrics()

    # ------------------------------------------------------------------
    def _sample_occupancy(self) -> None:
        """Periodic ``queue.occupancy`` tracepoint (bottleneck state)."""
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.occupancy", self.sim.now,
                q=self.queue.bytes, pkts=len(self.queue),
                limit=self.queue.limit_bytes, drops=self.queue.drops,
            )
        self.sim.schedule(self.sample_interval, self._sample_occupancy)

    def _register_metrics(self) -> None:
        m = self.metrics
        m.bind(self.sim)
        queue = self.queue
        m.gauge("queue.bytes", lambda: queue.bytes)
        m.gauge("queue.pkts", lambda: len(queue))
        m.counter("queue.drops", lambda: queue.drops)
        m.counter("link.bytes_sent", lambda: self.bottleneck.bytes_sent)
        m.counter("sim.events", lambda: self.sim.events_processed)
        controller = self.server.controller
        m.gauge("gcc.target_bps", lambda: controller.target)
        m.gauge("server.fps", lambda: self.server.current_fps)
        for iperf in self.iperfs:
            sender = iperf.sender
            m.gauge(f"{iperf.flow}.cwnd", lambda s=sender: s.cwnd)
            m.gauge(f"{iperf.flow}.pipe", lambda s=sender: s.pipe)
            m.gauge(
                f"{iperf.flow}.pacing_rate",
                lambda s=sender: s.pacing_rate or 0.0,
            )

    # ------------------------------------------------------------------
    def _make_queue(self):
        limit = self.router.queue_bytes
        if self.qdisc == "codel":
            return CoDelQueue(
                self.sim, limit_bytes=limit, on_drop=self.stats.on_drop,
                tracer=self.tracer,
            )
        if self.qdisc == "fq_codel":
            return FQCoDelQueue(
                self.sim, limit_bytes=limit, on_drop=self.stats.on_drop,
                tracer=self.tracer,
            )
        return DropTailQueue(
            self.sim, limit_bytes=limit, on_drop=self.stats.on_drop,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    def start_game(self) -> None:
        """Start the streaming session, the RTT probe, and observers."""
        self.server.start()
        self.client.start()
        self.prober.start()
        if self.tracer.enabled:
            self._sample_occupancy()
        if self.metrics is not None:
            self.metrics.start()

    def schedule_iperf(self, start: float, stop: float) -> None:
        """Schedule every competing flow's lifetime (paper: 185-370 s)."""
        if not self.iperfs:
            raise RuntimeError("testbed built without a competing flow")
        for iperf in self.iperfs:
            iperf.schedule(start, stop)

    def run(self, until: float) -> None:
        """Advance the simulation to ``until`` seconds."""
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    @property
    def game_flow(self) -> str:
        return self.profile.name

    def game_loss_rate(self) -> float:
        """Network loss rate of the media stream (sent vs dropped)."""
        return self.stats.for_flow(self.profile.name).loss_rate

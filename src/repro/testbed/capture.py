"""Wireshark-style packet capture.

The paper captures the game stream at the router and the iperf flow at
the client, then computes per-0.5 s bitrates from the traces.  Our
capture is a tap observer that appends ``(time, flow, size, kind)``
records; per-flow arrays are kept separately so bitrate binning is a
cheap numpy pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PacketCapture", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One captured packet."""

    time: float
    flow: str
    size: int
    kind: str


class _FlowTrace:
    __slots__ = ("times", "sizes")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.sizes: list[int] = []


class PacketCapture:
    """Accumulates packet arrivals per flow.

    Use ``capture.tap`` as the observer argument of
    :class:`repro.sim.node.Tap`; it needs the simulator for timestamps.
    """

    def __init__(self, sim):
        self.sim = sim
        self._flows: dict[str, _FlowTrace] = {}

    def tap(self, pkt) -> None:
        trace = self._flows.get(pkt.flow)
        if trace is None:
            trace = _FlowTrace()
            self._flows[pkt.flow] = trace
        trace.times.append(self.sim.now)
        trace.sizes.append(pkt.size)

    def flow_trace(self, flow: str) -> _FlowTrace:
        """The per-flow record lists, created on demand.

        Fused arrival paths append to ``times``/``sizes`` directly (one
        list append each) instead of routing every packet through
        :meth:`tap`; the records are identical either way.
        """
        trace = self._flows.get(flow)
        if trace is None:
            trace = _FlowTrace()
            self._flows[flow] = trace
        return trace

    # ------------------------------------------------------------------
    @property
    def flows(self) -> list[str]:
        return sorted(self._flows)

    def packet_count(self, flow: str) -> int:
        trace = self._flows.get(flow)
        return len(trace.times) if trace else 0

    def byte_count(self, flow: str) -> int:
        trace = self._flows.get(flow)
        return sum(trace.sizes) if trace else 0

    def arrays(self, flow: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, sizes) arrays for a flow; empty arrays if unseen."""
        trace = self._flows.get(flow)
        if trace is None:
            return np.empty(0), np.empty(0)
        return np.asarray(trace.times), np.asarray(trace.sizes, dtype=float)

    def bitrate_series(
        self, flow: str, t_start: float, t_end: float, bin_width: float = 0.5
    ) -> tuple[np.ndarray, np.ndarray]:
        """Binned bitrate (bits/s): returns (bin_centres, rates).

        This is the paper's "bitrate computed every 0.5 seconds".
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if t_end <= t_start:
            raise ValueError("t_end must be after t_start")
        times, sizes = self.arrays(flow)
        edges = np.arange(t_start, t_end + bin_width / 2, bin_width)
        if len(edges) < 2:
            raise ValueError("window shorter than one bin")
        if len(times) == 0:
            centres = (edges[:-1] + edges[1:]) / 2
            return centres, np.zeros(len(edges) - 1)
        byte_sums, _ = np.histogram(times, bins=edges, weights=sizes)
        centres = (edges[:-1] + edges[1:]) / 2
        return centres, byte_sums * 8.0 / bin_width

    def throughput_bps(self, flow: str, t_start: float, t_end: float) -> float:
        """Mean bitrate over a window."""
        if t_end <= t_start:
            raise ValueError("t_end must be after t_start")
        times, sizes = self.arrays(flow)
        if len(times) == 0:
            return 0.0
        mask = (times >= t_start) & (times < t_end)
        return float(sizes[mask].sum()) * 8.0 / (t_end - t_start)

    def to_csv(self, path, flows: list[str] | None = None) -> int:
        """Export the trace as CSV (``time,flow,size``), Wireshark-style.

        Records are merged across flows in time order.  Returns the
        number of rows written.  ``flows`` restricts the export.
        """
        selected = self.flows if flows is None else flows
        rows: list[tuple[float, str, int]] = []
        for flow in selected:
            trace = self._flows.get(flow)
            if trace is None:
                continue
            rows.extend(zip(trace.times, [flow] * len(trace.times), trace.sizes))
        rows.sort(key=lambda r: r[0])
        with open(path, "w") as handle:
            handle.write("time,flow,size\n")
            for time, flow, size in rows:
                handle.write(f"{time:.6f},{flow},{size}\n")
        return len(rows)

"""The measurement testbed (Figure 1 of the paper), in simulation.

- :mod:`repro.testbed.tc` -- ``tc``/``tbf``/``netem`` configuration
  helpers: BDP math, queue sizing, and rendering of the equivalent
  Linux commands.
- :mod:`repro.testbed.topology` -- the dumbbell: game server and iperf
  server behind a shared bottleneck (rate-limited link + drop-tail or
  AQM queue), per-flow delay equalisation to ~16.5 ms RTT, capture taps.
- :mod:`repro.testbed.iperf` -- the bulk-download TCP competitor.
- :mod:`repro.testbed.capture` -- Wireshark-style packet trace records.
- :mod:`repro.testbed.ping` -- the RTT probe running alongside the game.
- :mod:`repro.testbed.presentmon` -- client frame-presentation log.
"""

from repro.testbed.capture import PacketCapture, TraceRecord
from repro.testbed.iperf import IperfFlow
from repro.testbed.ping import PingProber
from repro.testbed.presentmon import PresentMonLog
from repro.testbed.tc import RouterConfig, bdp_bytes, queue_limit_bytes, render_tc_script
from repro.testbed.topology import GameStreamingTestbed

__all__ = [
    "GameStreamingTestbed",
    "IperfFlow",
    "PacketCapture",
    "PingProber",
    "PresentMonLog",
    "RouterConfig",
    "TraceRecord",
    "bdp_bytes",
    "queue_limit_bytes",
    "render_tc_script",
]

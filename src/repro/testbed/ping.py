"""Round-trip-time probing (the paper's ``ping`` to the game server).

A small echo request travels the uplink to the game server; the reply
returns through the same bottleneck queue the game stream uses, so the
measured RTT includes bottleneck queuing exactly as in the testbed.
Tables 3 and 4 are built from these samples.
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.packet import PING, PONG, Packet

__all__ = ["PingProber", "PingReflector"]

_PROBE_SIZE = 64


class PingReflector:
    """Server-side echo: turns a PING into a PONG on the downlink."""

    def __init__(self, downlink_path):
        self.downlink_path = downlink_path

    def receive(self, pkt: Packet) -> None:
        if pkt.kind != PING:
            return
        reply = Packet(
            pkt.flow, pkt.seq, _PROBE_SIZE, kind=PONG, sent_at=pkt.sent_at, meta=pkt.meta
        )
        self.downlink_path.receive(reply)


class PingProber:
    """Client-side prober: periodic echo requests, RTT sample log."""

    def __init__(
        self,
        sim: Simulator,
        flow: str,
        uplink_path,
        interval: float = 0.2,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.flow = flow
        self.uplink_path = uplink_path
        self.interval = interval
        self.samples: list[tuple[float, float]] = []  # (send time, rtt)
        self._seq = 0
        self._outstanding: dict[int, float] = {}
        self._running = False
        self._event = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        pkt = Packet(self.flow, self._seq, _PROBE_SIZE, kind=PING, sent_at=now)
        self._outstanding[self._seq] = now
        self._seq += 1
        self.uplink_path.receive(pkt)
        self._event = self.sim.schedule(self.interval, self._tick)

    def receive(self, pkt: Packet) -> None:
        if pkt.kind != PONG:
            return
        sent = self._outstanding.pop(pkt.seq, None)
        if sent is not None:
            self.samples.append((sent, self.sim.now - sent))

    # ------------------------------------------------------------------
    def rtts_in_window(self, t_start: float, t_end: float) -> np.ndarray:
        """RTT samples whose probes were sent within [t_start, t_end)."""
        return np.asarray(
            [rtt for sent, rtt in self.samples if t_start <= sent < t_end]
        )

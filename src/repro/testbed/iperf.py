"""The iperf bulk-download competitor.

In the paper an iperf client bulk-downloads from an iperf server over
TCP (Cubic or BBR) for the middle three minutes of each nine-minute
run.  :class:`IperfFlow` bundles our TCP sender/receiver pair with
scheduled start/stop times.
"""

from __future__ import annotations

from repro.obs.trace import Tracer
from repro.sim.engine import Simulator
from repro.sim.packet import PacketPool
from repro.tcp import TcpSender, make_cca
from repro.tcp.receiver import TcpReceiver

__all__ = ["IperfFlow"]


class IperfFlow:
    """A bulk TCP download with a scheduled lifetime.

    Wire the flow's sender output into the downlink path and give the
    receiver's ACK stream the uplink path; then call :meth:`schedule`.

    The pair shares a :class:`~repro.sim.packet.PacketPool`: the flow
    owns both ends of every DATA and ACK packet's lifecycle, so segments
    the receiver consumes come back as fresh ACKs and consumed ACKs come
    back as fresh segments instead of garbage.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: str,
        cca: str,
        downlink_path,
        uplink_path,
        on_send=None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.flow = flow
        self.cca_name = cca
        self.pool = PacketPool()
        self.receiver = TcpReceiver(sim, flow, ack_path=uplink_path, pool=self.pool)
        self.sender = TcpSender(
            sim, flow, path=downlink_path, cca=make_cca(cca), on_send=on_send,
            tracer=tracer, pool=self.pool,
        )

    def schedule(self, start: float, stop: float) -> None:
        """Start the bulk download at ``start``, stop it at ``stop``."""
        if stop <= start:
            raise ValueError("stop must be after start")
        self.sim.schedule_at(start, self.sender.start)
        self.sim.schedule_at(stop, self.sender.stop)

    @property
    def bytes_delivered(self) -> int:
        return self.sender.delivered

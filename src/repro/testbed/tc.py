"""``tc`` configuration: BDP math, queue sizing, command rendering.

The paper configures its Raspberry Pi router with ``tc netem`` (delay)
and ``tc tbf`` (rate + burst + limit), sizing the bottleneck queue as a
multiple (0.5x, 2x, 7x) of the bandwidth-delay product at a 16.5 ms
round-trip time.  This module holds that arithmetic plus a renderer for
the equivalent real-world commands (useful for documentation and for
checking our parameters against the paper's examples).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RouterConfig",
    "bdp_bytes",
    "queue_limit_bytes",
    "render_tc_script",
    "TARGET_RTT",
]

#: The equalised round-trip time the paper targets for every flow (s).
TARGET_RTT = 0.0165

#: Minimum queue: room for at least two full-size packets.
_MIN_QUEUE_BYTES = 3000


def bdp_bytes(rate_bps: float, rtt: float = TARGET_RTT) -> float:
    """Bandwidth-delay product in bytes."""
    if rate_bps <= 0 or rtt <= 0:
        raise ValueError("rate_bps and rtt must be positive")
    return rate_bps * rtt / 8.0


def queue_limit_bytes(
    rate_bps: float, queue_mult: float, rtt: float = TARGET_RTT
) -> int:
    """Bottleneck buffer size for a queue of ``queue_mult`` x BDP."""
    if queue_mult <= 0:
        raise ValueError(f"queue_mult must be positive, got {queue_mult}")
    return max(int(queue_mult * bdp_bytes(rate_bps, rtt)), _MIN_QUEUE_BYTES)


@dataclass(frozen=True)
class RouterConfig:
    """One bottleneck configuration (a cell of the paper's grid).

    Args:
        rate_bps: capacity limit (15, 25, or 35 Mb/s in the paper).
        queue_mult: buffer size in multiples of BDP (0.5, 2, or 7).
        rtt: the equalised round-trip time.
        burst_bytes: tbf burst allowance.
    """

    rate_bps: float
    queue_mult: float
    rtt: float = TARGET_RTT
    burst_bytes: int = 32_000  # ~ the paper's "burst 1mbit" at our scale

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {self.rate_bps}")
        if self.queue_mult <= 0:
            raise ValueError(f"queue_mult must be positive, got {self.queue_mult}")
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive, got {self.rtt}")

    @property
    def bdp(self) -> float:
        """Bandwidth-delay product, bytes."""
        return bdp_bytes(self.rate_bps, self.rtt)

    @property
    def queue_bytes(self) -> int:
        """Bottleneck buffer limit, bytes."""
        return queue_limit_bytes(self.rate_bps, self.queue_mult, self.rtt)

    @property
    def max_queue_delay(self) -> float:
        """Seconds a full queue adds to the one-way delay."""
        return self.queue_bytes * 8.0 / self.rate_bps


def render_tc_script(config: RouterConfig, added_delay: float, dev: str = "eth0") -> str:
    """Render the Linux ``tc`` commands equivalent to ``config``.

    Mirrors the example in Section 3.3 of the paper: a netem qdisc for
    added delay with a child tbf for rate/burst/limit.
    """
    delay_ms = added_delay * 1e3
    rate_mbit = config.rate_bps / 1e6
    burst = config.burst_bytes
    limit = config.queue_bytes
    return (
        f"tc qdisc add dev {dev} root handle 1: netem delay {delay_ms:.1f}ms\n"
        f"tc qdisc add dev {dev} parent 1: handle 2: "
        f"tbf rate {rate_mbit:g}mbit burst {burst}b limit {limit}b"
    )

"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback)``
entries in a binary heap.  The sequence number breaks ties so that events
scheduled at the same instant fire in FIFO order, which keeps packet
processing deterministic.

The engine is deliberately free of any networking knowledge; links,
queues, and protocol endpoints schedule callbacks on it.
"""

from __future__ import annotations

import heapq
from math import inf
from time import perf_counter
from typing import Any, Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    :meth:`cancel` them (used for retransmission timers, pacing timers,
    and the like).  A cancelled event stays in the heap but is skipped
    when popped; this is O(1) and avoids heap surgery.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class Simulator:
    """The event loop and simulation clock.

    Time is a float in seconds, starting at 0.  Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries are (time, seq, Event) tuples so ordering is
        # resolved by C-level float/int comparison without ever invoking
        # Python code on the Event itself.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._profiler = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.  ``delay``
        must be non-negative; zero-delay events run after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} (now is {self.now:.6f})"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, until: float, max_events: int) -> int:
        """The one dispatch loop behind both :meth:`step` and :meth:`run`.

        Pops and fires events with ``time <= until``, at most
        ``max_events`` of them (-1 for unlimited), and returns how many
        fired.  Every dispatched event passes the profiler hook here, so
        neither entry point can bypass instrumentation and
        ``events_processed`` stays consistent between them.
        """
        heap = self._heap
        heappop = heapq.heappop
        dispatched = 0
        while heap:
            time = heap[0][0]
            if time > until:
                break
            _, _, event = heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            profiler = self._profiler
            if profiler is None:
                event.fn(*event.args)
            else:
                start = perf_counter()
                event.fn(*event.args)
                profiler.on_event(event, perf_counter() - start, len(heap))
            dispatched += 1
            if dispatched == max_events:
                break
        return dispatched

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        return self._dispatch(inf, 1) > 0

    def run(self, until: float | None = None) -> None:
        """Run events until the heap empties or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the last event fired earlier, so subsequent scheduling is
        relative to the requested horizon.
        """
        if until is None:
            self._dispatch(inf, -1)
            return
        if until < self.now:
            raise SimulationError(
                f"cannot run until t={until:.6f} (now is {self.now:.6f})"
            )
        self._dispatch(until, -1)
        self.now = until

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Time every dispatched callback through ``profiler.on_event``.

        The hook receives ``(event, elapsed_seconds, heap_depth)``; see
        :class:`repro.obs.profiler.SimProfiler`.  Detach (or never
        attach) to keep the dispatch loop free of timing calls.
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed so far (for performance reporting)."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={self.pending}>"

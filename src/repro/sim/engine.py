"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback)``
entries in a pending-event store.  The sequence number breaks ties so
that events scheduled at the same instant fire in FIFO order, which
keeps packet processing deterministic.

The store is pluggable behind ``Simulator(scheduler=...)``: the default
``"wheel"`` backend is the hierarchical timing wheel of
:mod:`repro.sim.wheel` (O(1) bucket pushes for the packet-horizon
events that dominate a run), while ``"heap"`` keeps the classic binary
heap.  Both dispatch in byte-identical ``(time, seq)`` order -- the
tie-break contract (:meth:`Simulator.reserve_seq`,
:meth:`Simulator.rearm`, tombstone compaction) is backend-independent,
and a CI parity job plus a Hypothesis property test keep it that way.
External hot paths push through ``sim._push(time, seq, event)`` so they
stay backend-agnostic.

The engine is deliberately free of any networking knowledge; links,
queues, and protocol endpoints schedule callbacks on it.
"""

from __future__ import annotations

import gc
import heapq
import os
from math import inf
from time import perf_counter
from typing import Any, Callable

from repro.sim.wheel import TimingWheel

__all__ = ["Event", "Simulator", "SimulationError", "DEFAULT_SCHEDULER"]

#: Backend used when neither the ``scheduler`` argument nor the
#: ``REPRO_SCHEDULER`` environment variable says otherwise.
DEFAULT_SCHEDULER = "wheel"

# Bound once: the scheduling and dispatch paths run for every event, and
# a module-level name saves the heapq attribute lookup on each of them.
_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    :meth:`cancel` them (used for retransmission timers, pacing timers,
    and the like).  A cancelled event stays in the heap but is skipped
    when popped; this is O(1) and avoids heap surgery.  The engine
    counts tombstones and compacts the heap when they dominate, so a
    run that cancels millions of timers (every ACK re-arms the RTO)
    does not drag a heap of dead entries through every push and pop.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class Simulator:
    """The event loop and simulation clock.

    Time is a float in seconds, starting at 0.  Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)
    """

    #: Compaction floor: below this many tombstones the rebuild is not
    #: worth its O(n) cost, whatever fraction of the backlog they are.
    COMPACT_MIN_CANCELLED = 256

    def __init__(self, scheduler: str | None = None) -> None:
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", DEFAULT_SCHEDULER)
        self.now: float = 0.0
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled: int = 0
        self._compactions: int = 0
        self._profiler = None
        # Entries are (time, seq, Event) tuples in both backends, so
        # ordering is resolved by C-level float/int comparison without
        # ever invoking Python code on the Event itself.  ``_push`` is
        # the backend-agnostic insertion point that delay lines and
        # links cache at wiring time.
        if scheduler == "wheel":
            self._heap: list[tuple[float, int, Event]] | None = None
            self._wheel: TimingWheel | None = TimingWheel()
            self._push = self._wheel.push
            self._dispatch = self._dispatch_wheel
        elif scheduler == "heap":
            self._heap = []
            self._wheel = None
            self._push = self._heap_push
            self._dispatch = self._dispatch_heap
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; options: 'wheel', 'heap'"
            )
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.  ``delay``
        must be non-negative; zero-delay events run after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        # Inlined bookkeeping (not a schedule_at call): this is the
        # hottest entry point -- every packet and timer comes through
        # here -- and the extra frame costs more than the lines save.
        time = self.now + delay
        seq = self._seq = self._seq + 1
        event = Event(time, seq, fn, args, self)
        self._push(time, seq, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} (now is {self.now:.6f})"
            )
        seq = self._seq = self._seq + 1
        event = Event(time, seq, fn, args, self)
        self._push(time, seq, event)
        return event

    def reserve_seq(self) -> int:
        """Allocate and return a tie-break sequence number, scheduling
        nothing.

        A coalescing stage (:class:`~repro.sim.delayline.DelayLine`)
        reserves, at enqueue time, the exact heap position its item
        would have held under per-item :meth:`schedule_at`; passing the
        reserved number to :meth:`rearm` later reproduces that dispatch
        order bit-for-bit, including same-instant ties against
        unrelated events.
        """
        seq = self._seq = self._seq + 1
        return seq

    def rearm(self, event: Event, time: float, seq: int | None = None) -> Event:
        """Re-insert a timer :class:`Event` at an absolute time, in place.

        The allocation-free sibling of :meth:`schedule_at` for
        self-rearming timers (delay lines, pacers): the same Event
        object is recycled across firings instead of constructing a new
        one per arm.  The caller must guarantee the event is NOT
        currently in the heap -- i.e. it has already fired or has never
        been armed.  Rearming an event that is still queued would make
        it fire twice.

        ``seq`` recycles a tie-break number previously taken with
        :meth:`reserve_seq` (it must not still be in the heap); by
        default a fresh number is allocated.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot rearm at t={time:.6f} (now is {self.now:.6f})"
            )
        if seq is None:
            seq = self._seq = self._seq + 1
        event.time = time
        event.seq = seq
        event.cancelled = False
        event._sim = self
        self._push(time, seq, event)
        return event

    def _heap_push(self, time: float, seq: int, event: Event) -> None:
        """``_push`` implementation for the heap backend."""
        _heappush(self._heap, (time, seq, event))

    # ------------------------------------------------------------------
    # Tombstone accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for events still queued.

        When tombstones outnumber live events (and exceed a fixed
        floor), the backlog is rebuilt without them: timer-heavy senders
        cancel and re-arm the RTO on every ACK, and without compaction
        those dead entries inflate every subsequent push and pop.
        """
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_MIN_CANCELLED:
            heap = self._heap
            backlog = len(heap) if heap is not None else self._wheel.size
            if self._cancelled * 2 > backlog:
                self._compact()

    def _compact(self) -> None:
        # In place (``heap[:] =``), so the dispatch loop's heap alias
        # stays valid even when a callback's cancel() triggers
        # compaction mid-run.  Order is a pure (time, seq) comparison in
        # both backends, so filtering reproduces the exact same dispatch
        # order.
        heap = self._heap
        if heap is not None:
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
        else:
            self._wheel.compact()
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch_heap(self, until: float, max_events: int) -> int:
        """The dispatch loop behind both :meth:`step` and :meth:`run`.

        Pops and fires events with ``time <= until``, at most
        ``max_events`` of them (-1 for unlimited), and returns how many
        fired.  Every dispatched event passes the profiler hook here, so
        neither entry point can bypass instrumentation and
        ``events_processed`` stays consistent between them.
        """
        heap = self._heap
        heappop = _heappop
        # Profilers attach/detach only between dispatch calls, so the
        # lookup is hoisted out of the loop.
        profiler = self._profiler
        dispatched = 0
        while heap:
            time = heap[0][0]
            if time > until:
                break
            _, _, event = heappop(heap)
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            # A fired event must not count as a tombstone if someone
            # cancels it afterwards (cancel is documented as idempotent).
            event._sim = None
            self.now = time
            self._events_processed += 1
            if profiler is None:
                event.fn(*event.args)
            else:
                start = perf_counter()
                event.fn(*event.args)
                profiler.on_event(
                    event, perf_counter() - start, len(heap) - self._cancelled
                )
            dispatched += 1
            if dispatched == max_events:
                break
        return dispatched

    def _dispatch_wheel(self, until: float, max_events: int) -> int:
        """Wheel-backend dispatch: same contract as :meth:`_dispatch_heap`.

        The fast path is the heap loop verbatim, plus one float compare
        against ``boundary`` -- the start of the earliest occupied wheel
        or overflow slot.  A heap head strictly below the local boundary
        is always safe to fire: every near-heap entry is earlier than
        ``(cur + near) * slot_s`` and any push that lowers the wheel's
        boundary files at or beyond that mark, so a stale local copy can
        only be wrong in the harmless direction (too low -> one wasted
        refresh).  The slow path re-reads the wheel's boundary -- a
        callback's far push could otherwise break the loop early and
        strand bucketed events -- and only then decides between
        stopping at ``until`` and cascading the next slot into the heap.
        """
        wheel = self._wheel
        heap = wheel.heap
        cascade = wheel.cascade_next
        heappop = _heappop
        profiler = self._profiler
        dispatched = 0
        boundary = wheel.boundary
        while True:
            if heap:
                time = heap[0][0]
                if time < boundary:
                    if time > until:
                        break
                    _, _, event = heappop(heap)
                    if event.cancelled:
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        continue
                    event._sim = None
                    self.now = time
                    self._events_processed += 1
                    if profiler is None:
                        event.fn(*event.args)
                    else:
                        start = perf_counter()
                        event.fn(*event.args)
                        profiler.on_event(
                            event,
                            perf_counter() - start,
                            wheel.size - self._cancelled,
                        )
                    dispatched += 1
                    if dispatched == max_events:
                        break
                    continue
            # Slow path: heap empty, or its head is at/past the local
            # boundary.  Refresh the boundary first -- a callback may
            # have pushed a far event (lowering it) or cascaded via
            # compaction (raising it).
            fresh = wheel.boundary
            if fresh != boundary:
                boundary = fresh
                continue
            if boundary > until:
                break
            dropped = cascade()
            if dropped:
                cancelled = self._cancelled - dropped
                self._cancelled = cancelled if cancelled > 0 else 0
            boundary = wheel.boundary
            if not heap and boundary == inf:
                break
        return dispatched

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        return self._dispatch(inf, 1) > 0

    def run(self, until: float | None = None) -> None:
        """Run events until the heap empties or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the last event fired earlier, so subsequent scheduling is
        relative to the requested horizon.

        The cyclic garbage collector is suspended for the duration of
        the dispatch: the per-packet objects (packets, metadata, ledger
        entries, heap tuples) are reference-counted and acyclic, so
        generation-0 scans triggered every ~700 allocations find nothing
        to free and only add latency.  The few genuine cycles (a stage's
        self-referencing timer event) are per-component singletons that
        the re-enabled collector reaps after the run.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until t={until:.6f} (now is {self.now:.6f})"
            )
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is None:
                self._dispatch(inf, -1)
                return
            self._dispatch(until, -1)
            self.now = until
        finally:
            if gc_was_enabled:
                gc.enable()

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Time every dispatched callback through ``profiler.on_event``.

        The hook receives ``(event, elapsed_seconds, heap_depth)``; see
        :class:`repro.obs.profiler.SimProfiler`.  Detach (or never
        attach) to keep the dispatch loop free of timing calls.
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    @property
    def pending(self) -> int:
        """Entries still queued, cancelled tombstones included.

        This is the raw container size (heap length or wheel occupancy);
        use :attr:`live_pending` for the number of events that will
        actually fire.
        """
        heap = self._heap
        return len(heap) if heap is not None else self._wheel.size

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually fire.

        Excludes cancelled tombstones awaiting their pop (or the next
        compaction), so it is the truthful backlog figure -- the one the
        profiler reports as heap depth.
        """
        live = self.pending - self._cancelled
        return live if live > 0 else 0

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to shed cancelled tombstones."""
        return self._compactions

    @property
    def events_processed(self) -> int:
        """Total events executed so far (for performance reporting)."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={self.live_pending}>"

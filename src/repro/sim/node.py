"""Wiring helpers: sinks, taps, demultiplexers, pipelines.

The testbed composes paths out of stages (netem delay, token bucket,
links) that all expose a single-method ``receive(pkt)`` interface.  This
module provides the small glue pieces:

- :class:`PacketSink` -- the structural protocol every stage satisfies.
- :class:`Tap` -- a pass-through observation point (our "Wireshark").
- :class:`Demux` -- fan-out by flow id (the router's forwarding table).
- :class:`Pipeline` -- compose stages into one sink.
- :class:`NullSink` / :class:`CollectorSink` -- terminal sinks for tests.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.sim.packet import Packet

__all__ = ["PacketSink", "Tap", "Demux", "Pipeline", "NullSink", "CollectorSink"]


@runtime_checkable
class PacketSink(Protocol):
    """Anything that accepts packets."""

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - protocol
        ...


class Tap:
    """Pass-through observation point.

    Invokes ``observer(pkt, ...)`` for every packet, then forwards to the
    downstream sink.  Used to implement Wireshark-style captures at the
    router and the client without perturbing the traffic.
    """

    def __init__(self, sink: PacketSink, observer: Callable[[Packet], None]):
        self.sink = sink
        self.observer = observer

    def receive(self, pkt: Packet) -> None:
        self.observer(pkt)
        self.sink.receive(pkt)


class Demux:
    """Forward packets to per-flow sinks -- the router's forwarding table.

    Unknown flows go to ``default`` when given, otherwise raise, because a
    misrouted packet in a simulation is always a wiring bug.
    """

    def __init__(self, default: PacketSink | None = None):
        self._routes: dict[str, PacketSink] = {}
        self.default = default

    def route(self, flow: str, sink: PacketSink) -> None:
        self._routes[flow] = sink

    def sink_for(self, flow: str) -> PacketSink:
        """The sink ``receive`` would forward this flow to.

        Fused ingress paths (see the testbed topology) resolve the route
        once per flow and then dispatch directly; the raise-on-unknown
        semantics match :meth:`receive`.
        """
        sink = self._routes.get(flow)
        if sink is None:
            if self.default is None:
                raise KeyError(f"no route for flow {flow!r}")
            sink = self.default
        return sink

    def receive(self, pkt: Packet) -> None:
        sink = self._routes.get(pkt.flow)
        if sink is None:
            if self.default is None:
                raise KeyError(f"no route for flow {pkt.flow!r}")
            sink = self.default
        sink.receive(pkt)


class Pipeline:
    """Expose the head of a chain of stages as a single sink.

    Purely cosmetic -- stages are already chained by construction -- but
    it documents path boundaries in topology code.
    """

    def __init__(self, head: PacketSink):
        self.head = head

    def receive(self, pkt: Packet) -> None:
        self.head.receive(pkt)


class NullSink:
    """Swallow packets, counting them."""

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0

    def receive(self, pkt: Packet) -> None:
        self.packets += 1
        self.bytes += pkt.size


class CollectorSink:
    """Keep every received packet, in order (tests only)."""

    def __init__(self) -> None:
        self.packets: list[Packet] = []

    def receive(self, pkt: Packet) -> None:
        self.packets.append(pkt)

"""Active Queue Management: CoDel and FQ-CoDel.

The paper's router is drop-tail only and its future-work section calls out
AQM (specifically Flow Queue CoDel, RFC 8290) as the natural follow-on
experiment.  We implement both CoDel (RFC 8289) and FQ-CoDel so the
ablation benchmarks can re-run the paper's scenarios with smarter queues.

CoDel drops at *dequeue* time based on packet sojourn: once the standing
queue delay exceeds ``target`` for at least ``interval``, packets are
dropped at increasing frequency (``interval / sqrt(count)``) until the
delay falls below target.  FQ-CoDel hashes flows into separate CoDel
queues served by deficit round-robin, with new flows given priority.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.obs.trace import Tracer
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import Queue

__all__ = ["CoDelQueue", "FQCoDelQueue"]

_MTU = 1514


class _CoDelState:
    """Per-queue CoDel control-law state (RFC 8289 pseudocode)."""

    __slots__ = ("first_above_time", "drop_next", "count", "lastcount", "dropping")

    def __init__(self) -> None:
        self.first_above_time = 0.0
        self.drop_next = 0.0
        self.count = 0
        self.lastcount = 0
        self.dropping = False


def _control_law(t: float, interval: float, count: int) -> float:
    return t + interval / (count**0.5)


class CoDelQueue(Queue):
    """A CoDel-managed FIFO (RFC 8289).

    Args:
        sim: the event loop.
        limit_bytes: hard byte cap (drop-tail backstop, as in Linux).
        target: acceptable standing queue delay (default 5 ms).
        interval: sliding window for the delay estimate (default 100 ms).
        on_drop: optional callback for dropped packets.
    """

    def __init__(
        self,
        sim: Simulator,
        limit_bytes: int,
        target: float = 0.005,
        interval: float = 0.100,
        on_drop: Callable[[Packet], None] | None = None,
        tracer: Tracer | None = None,
    ):
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        super().__init__(sim, on_drop, tracer)
        self.limit_bytes = limit_bytes
        self.target = target
        self.interval = interval
        self._state = _CoDelState()

    def enqueue(self, pkt: Packet) -> bool:
        if self.bytes + pkt.size > self.limit_bytes:
            self._drop(pkt)
            return False
        self._admit(pkt)
        return True

    # -- CoDel dequeue machinery ----------------------------------------
    def _should_drop(self, pkt: Packet, now: float, state: _CoDelState) -> bool:
        sojourn = now - pkt.enqueued_at
        if sojourn < self.target or self.bytes < _MTU:
            state.first_above_time = 0.0
            return False
        if state.first_above_time == 0.0:
            state.first_above_time = now + self.interval
            return False
        return now >= state.first_above_time

    def _codel_pop(self, state: _CoDelState) -> Packet | None:
        now = self.sim.now
        pkt = self._pop_fifo()
        if pkt is None:
            state.dropping = False
            return None
        drop = self._should_drop(pkt, now, state)
        if state.dropping:
            if not drop:
                state.dropping = False
            else:
                while state.dropping and now >= state.drop_next:
                    self._drop(pkt)
                    state.count += 1
                    pkt = self._pop_fifo()
                    if pkt is None:
                        state.dropping = False
                        return None
                    if not self._should_drop(pkt, now, state):
                        state.dropping = False
                    else:
                        state.drop_next = _control_law(
                            state.drop_next, self.interval, state.count
                        )
        elif drop:
            self._drop(pkt)
            pkt = self._pop_fifo()
            if pkt is None:
                return None
            state.dropping = True
            # Start the next drop sooner if we were recently dropping.
            delta = state.count - state.lastcount
            state.count = (
                delta if delta > 1 and now - state.drop_next < 16 * self.interval else 1
            )
            state.drop_next = _control_law(now, self.interval, state.count)
            state.lastcount = state.count
        return pkt

    def pop(self) -> Packet | None:
        return self._codel_pop(self._state)


class _FlowQueue:
    """One FQ-CoDel sub-queue: its own FIFO, CoDel state, and DRR deficit."""

    __slots__ = ("fifo", "state", "deficit", "active")

    def __init__(self) -> None:
        self.fifo: deque[Packet] = deque()
        self.state = _CoDelState()
        self.deficit = 0
        self.active = False


class FQCoDelQueue(Queue):
    """Flow Queue CoDel (RFC 8290), simplified but faithful in structure.

    Flows (keyed by ``Packet.flow``) get individual CoDel queues served by
    deficit round-robin with quantum one MTU; queues that become active
    join the *new* list and are served before *old* queues, giving sparse
    flows (pings, ACKs, feedback) low latency even under bulk load.
    """

    def __init__(
        self,
        sim: Simulator,
        limit_bytes: int,
        target: float = 0.005,
        interval: float = 0.100,
        quantum: int = _MTU,
        on_drop: Callable[[Packet], None] | None = None,
        tracer: Tracer | None = None,
    ):
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        super().__init__(sim, on_drop, tracer)
        self.limit_bytes = limit_bytes
        self.target = target
        self.interval = interval
        self.quantum = quantum
        self._flows: dict[str, _FlowQueue] = {}
        self._new: deque[_FlowQueue] = deque()
        self._old: deque[_FlowQueue] = deque()

    # -- helpers ---------------------------------------------------------
    def _flow_queue(self, flow: str) -> _FlowQueue:
        fq = self._flows.get(flow)
        if fq is None:
            fq = _FlowQueue()
            self._flows[flow] = fq
        return fq

    def _drop_from_longest(self) -> None:
        """On overflow, drop from the fattest flow (RFC 8290 section 4.1.3)."""
        fattest = max(
            (fq for fq in self._flows.values() if fq.fifo),
            key=lambda fq: sum(p.size for p in fq.fifo),
            default=None,
        )
        if fattest is None:
            return
        victim = fattest.fifo.popleft()
        self.bytes -= victim.size
        self._drop(victim)

    def enqueue(self, pkt: Packet) -> bool:
        if self.bytes + pkt.size > self.limit_bytes:
            self._drop_from_longest()
            if self.bytes + pkt.size > self.limit_bytes:
                self._drop(pkt)
                return False
        fq = self._flow_queue(pkt.flow)
        pkt.enqueued_at = self.sim.now
        fq.fifo.append(pkt)
        self.bytes += pkt.size
        self.enqueues += 1
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.enqueue", self.sim.now,
                flow=pkt.flow, size=pkt.size, q=self.bytes,
            )
        if not fq.active:
            fq.active = True
            fq.deficit = self.quantum
            self._new.append(fq)
        return True

    # -- CoDel applied per flow queue -------------------------------------
    def _codel_pop_flow(self, fq: _FlowQueue) -> Packet | None:
        now = self.sim.now
        state = fq.state
        while fq.fifo:
            pkt = fq.fifo.popleft()
            self.bytes -= pkt.size
            sojourn = now - pkt.enqueued_at
            if sojourn < self.target or not fq.fifo:
                state.first_above_time = 0.0
                state.dropping = False
                return pkt
            if state.first_above_time == 0.0:
                state.first_above_time = now + self.interval
                return pkt
            if now < state.first_above_time:
                return pkt
            if not state.dropping:
                state.dropping = True
                state.count = 1
                state.drop_next = _control_law(now, self.interval, state.count)
                self._drop(pkt)
                continue
            if now >= state.drop_next:
                state.count += 1
                state.drop_next = _control_law(
                    state.drop_next, self.interval, state.count
                )
                self._drop(pkt)
                continue
            return pkt
        state.dropping = False
        return None

    def pop(self) -> Packet | None:
        while self._new or self._old:
            from_new = bool(self._new)
            queue_list = self._new if from_new else self._old
            fq = queue_list[0]
            if fq.deficit <= 0:
                fq.deficit += self.quantum
                queue_list.popleft()
                self._old.append(fq)
                continue
            pkt = self._codel_pop_flow(fq)
            if pkt is None:
                queue_list.popleft()
                if from_new and fq.fifo:
                    self._old.append(fq)  # pragma: no cover - defensive
                else:
                    fq.active = False
                continue
            fq.deficit -= pkt.size
            if self.tracer.enabled:
                self.tracer.emit(
                    "queue.dequeue", self.sim.now,
                    flow=pkt.flow, size=pkt.size, q=self.bytes,
                    sojourn=self.sim.now - pkt.enqueued_at,
                )
            return pkt
        return None

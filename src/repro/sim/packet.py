"""Packets: the unit of transmission.

A single :class:`Packet` class covers every protocol in the testbed.  The
``kind`` field distinguishes TCP data, TCP ACKs, streaming media, streaming
feedback, and ping probes; protocol-specific state rides in the ``meta``
slot (e.g. a :class:`~repro.tcp.receiver.AckInfo` for ACKs, a frame id for
media packets).  Keeping one concrete class with ``__slots__`` keeps the
per-packet cost low, which matters: a full paper-scale run moves a few
million packets.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Packet", "DATA", "ACK", "FEEDBACK", "PING", "PONG", "MEDIA"]

# Packet kinds.  Plain module-level strings (interned) compare by identity.
DATA = "data"  # TCP payload segment
ACK = "ack"  # TCP acknowledgement
MEDIA = "media"  # game-stream video payload (RTP-like)
FEEDBACK = "feedback"  # game-stream receiver report (RTCP-like)
PING = "ping"  # echo request
PONG = "pong"  # echo reply


class Packet:
    """A packet in flight.

    Attributes:
        flow: flow identifier string, e.g. ``"iperf"`` or ``"stadia"``.
        seq: protocol sequence number (TCP segment index, RTP seq, ...).
        size: wire size in bytes, headers included.
        kind: one of the module-level kind constants.
        sent_at: simulation time the sender transmitted it (set by sender).
        meta: protocol payload (ACK blocks, feedback report, frame id...).
        enqueued_at: time it entered the current bottleneck queue
            (set by queues; used by AQM for sojourn time).
    """

    __slots__ = ("flow", "seq", "size", "kind", "sent_at", "meta", "enqueued_at")

    def __init__(
        self,
        flow: str,
        seq: int,
        size: int,
        kind: str = DATA,
        sent_at: float = 0.0,
        meta: Any = None,
    ):
        self.flow = flow
        self.seq = seq
        self.size = size
        self.kind = kind
        self.sent_at = sent_at
        self.meta = meta
        self.enqueued_at = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.flow}#{self.seq} {self.kind} {self.size}B "
            f"t={self.sent_at:.6f}>"
        )

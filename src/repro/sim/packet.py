"""Packets: the unit of transmission.

A single :class:`Packet` class covers every protocol in the testbed.  The
``kind`` field distinguishes TCP data, TCP ACKs, streaming media, streaming
feedback, and ping probes; protocol-specific state rides in the ``meta``
slot (e.g. a :class:`~repro.tcp.receiver.AckInfo` for ACKs, a frame id for
media packets).  Keeping one concrete class with ``__slots__`` keeps the
per-packet cost low, which matters: a full paper-scale run moves a few
million packets.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Packet", "PacketPool", "DATA", "ACK", "FEEDBACK", "PING", "PONG", "MEDIA"]

# Packet kinds.  Plain module-level strings (interned) compare by identity.
DATA = "data"  # TCP payload segment
ACK = "ack"  # TCP acknowledgement
MEDIA = "media"  # game-stream video payload (RTP-like)
FEEDBACK = "feedback"  # game-stream receiver report (RTCP-like)
PING = "ping"  # echo request
PONG = "pong"  # echo reply


class Packet:
    """A packet in flight.

    Attributes:
        flow: flow identifier string, e.g. ``"iperf"`` or ``"stadia"``.
        seq: protocol sequence number (TCP segment index, RTP seq, ...).
        size: wire size in bytes, headers included.
        kind: one of the module-level kind constants.
        sent_at: simulation time the sender transmitted it (set by sender).
        meta: protocol payload (ACK blocks, feedback report, frame id...).
        enqueued_at: time it entered the current bottleneck queue
            (set by queues; used by AQM for sojourn time).
    """

    __slots__ = ("flow", "seq", "size", "kind", "sent_at", "meta", "enqueued_at")

    def __init__(
        self,
        flow: str,
        seq: int,
        size: int,
        kind: str = DATA,
        sent_at: float = 0.0,
        meta: Any = None,
    ):
        self.flow = flow
        self.seq = seq
        self.size = size
        self.kind = kind
        self.sent_at = sent_at
        self.meta = meta
        self.enqueued_at = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.flow}#{self.seq} {self.kind} {self.size}B "
            f"t={self.sent_at:.6f}>"
        )


class PacketPool:
    """Free list recycling :class:`Packet` objects.

    A saturating TCP flow allocates one DATA packet per segment and one
    ACK packet per delivery -- millions of short-lived objects per
    paper-scale run.  A pool turns those into slot reassignments on a
    recycled object.

    Safety contract: only wiring that owns *both* ends of a packet's
    lifecycle may release.  An :class:`~repro.testbed.iperf.IperfFlow`
    qualifies: its sender is the terminal consumer of the receiver's
    ACKs, and its receiver is the terminal consumer of delivered DATA
    segments (capture taps and stats hooks copy fields, never retain the
    object).  Packets that die elsewhere -- dropped at a queue, held by
    a test sink -- are simply never released and fall back to the
    garbage collector, which is always correct.
    """

    __slots__ = ("_free", "limit", "allocated", "reused", "released")

    def __init__(self, limit: int = 512):
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self._free: list[Packet] = []
        self.limit = limit
        self.allocated = 0  # pool misses: fresh Packet constructions
        self.reused = 0  # pool hits
        self.released = 0  # returns accepted (beyond-limit returns are dropped)

    def __len__(self) -> int:
        return len(self._free)

    def acquire(
        self,
        flow: str,
        seq: int,
        size: int,
        kind: str = DATA,
        sent_at: float = 0.0,
        meta: Any = None,
    ) -> Packet:
        """A packet with the given fields, recycled when possible."""
        free = self._free
        if free:
            pkt = free.pop()
            pkt.flow = flow
            pkt.seq = seq
            pkt.size = size
            pkt.kind = kind
            pkt.sent_at = sent_at
            pkt.meta = meta
            pkt.enqueued_at = 0.0
            self.reused += 1
            return pkt
        self.allocated += 1
        return Packet(flow, seq, size, kind, sent_at, meta)

    def release(self, pkt: Packet) -> None:
        """Return a dead packet for reuse.  The caller must drop its ref."""
        if len(self._free) < self.limit:
            pkt.meta = None  # do not pin AckInfo / frame metadata alive
            self._free.append(pkt)
            self.released += 1

    def stats(self) -> dict:
        """Counters for benchmark reports."""
        return {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": len(self._free),
        }

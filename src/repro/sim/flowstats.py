"""Per-flow send/receive/drop accounting.

Loss rates in the paper (Section 4.3) are computed from Wireshark traces
as the fraction of sent packets that never reach the client.  A
:class:`StatsRegistry` aggregates per-flow counters fed by sender hooks,
drop callbacks, and receive taps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FlowStats", "StatsRegistry"]


@dataclass
class FlowStats:
    """Counters for one flow."""

    flow: str
    packets_sent: int = 0
    bytes_sent: int = 0
    packets_received: int = 0
    bytes_received: int = 0
    packets_dropped: int = 0
    bytes_dropped: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets dropped in the network (0 when idle)."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


@dataclass
class StatsRegistry:
    """Keyed collection of :class:`FlowStats`."""

    flows: dict[str, FlowStats] = field(default_factory=dict)

    def for_flow(self, flow: str) -> FlowStats:
        stats = self.flows.get(flow)
        if stats is None:
            stats = FlowStats(flow)
            self.flows[flow] = stats
        return stats

    def on_send(self, pkt) -> None:
        stats = self.for_flow(pkt.flow)
        stats.packets_sent += 1
        stats.bytes_sent += pkt.size

    def on_receive(self, pkt) -> None:
        stats = self.for_flow(pkt.flow)
        stats.packets_received += 1
        stats.bytes_received += pkt.size

    def on_drop(self, pkt) -> None:
        stats = self.for_flow(pkt.flow)
        stats.packets_dropped += 1
        stats.bytes_dropped += pkt.size

"""Per-flow send/receive/drop accounting.

Loss rates in the paper (Section 4.3) are computed from Wireshark traces
as the fraction of sent packets that never reach the client.  A
:class:`StatsRegistry` aggregates per-flow counters fed by sender hooks,
drop callbacks, and receive taps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FlowStats", "StatsRegistry"]


@dataclass
class FlowStats:
    """Counters for one flow.

    The ``on_*`` methods are per-flow hooks: a component that serves
    exactly one flow (a TCP sender, the streaming server) takes the
    bound method directly -- via :meth:`StatsRegistry.send_hook` -- and
    skips the per-packet flow-id lookup of the registry-level hooks.
    """

    flow: str
    packets_sent: int = 0
    bytes_sent: int = 0
    packets_received: int = 0
    bytes_received: int = 0
    packets_dropped: int = 0
    bytes_dropped: int = 0

    def on_send(self, pkt) -> None:
        self.packets_sent += 1
        self.bytes_sent += pkt.size

    def on_receive(self, pkt) -> None:
        self.packets_received += 1
        self.bytes_received += pkt.size

    def on_drop(self, pkt) -> None:
        self.packets_dropped += 1
        self.bytes_dropped += pkt.size

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets dropped in the network (0 when idle)."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent


@dataclass
class StatsRegistry:
    """Keyed collection of :class:`FlowStats`."""

    flows: dict[str, FlowStats] = field(default_factory=dict)

    def for_flow(self, flow: str) -> FlowStats:
        stats = self.flows.get(flow)
        if stats is None:
            stats = FlowStats(flow)
            self.flows[flow] = stats
        return stats

    def send_hook(self, flow: str):
        """Bound per-flow send counter for single-flow components."""
        return self.for_flow(flow).on_send

    # Registry-level hooks for taps that see every flow (the client
    # arrival tap, the shared bottleneck queue's drop callback).
    def on_send(self, pkt) -> None:
        self.for_flow(pkt.flow).on_send(pkt)

    def on_receive(self, pkt) -> None:
        self.for_flow(pkt.flow).on_receive(pkt)

    def on_drop(self, pkt) -> None:
        self.for_flow(pkt.flow).on_drop(pkt)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """One batched read of every flow's counters.

        Benchmarks and reports want all counters at a consistent point;
        this gathers them in a single pass instead of per-metric
        attribute walks.
        """
        return {
            flow: {
                "packets_sent": s.packets_sent,
                "bytes_sent": s.bytes_sent,
                "packets_received": s.packets_received,
                "bytes_received": s.bytes_received,
                "packets_dropped": s.packets_dropped,
                "bytes_dropped": s.bytes_dropped,
            }
            for flow, s in sorted(self.flows.items())
        }

"""Links: serialisation plus propagation.

A :class:`Link` models a transmission line of a given rate: packets are
serialised one at a time (``size * 8 / rate`` seconds each) and then
delivered to the downstream sink after a fixed propagation delay.  The
link drains an attached :class:`~repro.sim.queues.Queue`; the bottleneck
in our testbed is a 15/25/35 Mb/s link fed by a drop-tail queue sized in
multiples of the BDP, exactly mirroring the paper's ``tbf`` setup.
"""

from __future__ import annotations

from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.delayline import DelayLine
from repro.sim.engine import Event, Simulator
from repro.sim.packet import Packet
from repro.sim.queues import Queue, UnboundedQueue

__all__ = ["Link"]


class Link:
    """A fixed-rate transmission link drained from a queue.

    Serialisation completions are strictly increasing, so the fixed
    propagation leg behind them is provably FIFO and rides a coalesced
    :class:`~repro.sim.delayline.DelayLine` -- one live heap entry for
    the whole leg instead of one per packet in flight.

    Args:
        sim: the event loop.
        rate_bps: line rate in bits per second.
        delay: one-way propagation delay in seconds.
        sink: downstream object with a ``receive(pkt)`` method.
        queue: the buffer feeding this link; defaults to an unbounded FIFO.
        tracer: optional tracepoint bus (``link.tx`` per transmission;
            utilisation is the cumulative ``sent`` field over time).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay: float,
        sink,
        queue: Queue | None = None,
        tracer: Tracer | None = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.sink = sink
        self.queue = queue if queue is not None else UnboundedQueue(sim)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.busy = False
        self.bytes_sent = 0
        self.packets_sent = 0
        # The dispatch path runs twice per packet (enqueue kick + tx
        # completion); queue, sink and scheduler are fixed at wiring
        # time, so their bound methods are cached once here instead of
        # being re-resolved through two attribute hops per call.
        self._enqueue = self.queue.enqueue
        self._express = self.queue.express
        self._pop = self.queue.pop
        self._sink_receive = sink.receive
        self._sched_push = sim._push
        self._prop_push = DelayLine(sim, sink.receive).push if delay > 0 else None
        # The serialisation timer is one recycled Event: the busy flag
        # guarantees it is out of the scheduler whenever it is re-armed,
        # and it is never cancelled, so the inlined arming below (a
        # fresh tie-break seq plus a scheduler push, exactly what
        # sim.schedule does) replaces an Event allocation per
        # transmission.
        self._tx_event = Event(0.0, 0, self._tx_done, ())

    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """Entry point: enqueue a packet and start transmitting if idle."""
        if not self.busy:
            # Idle link: the queue is empty, so a plain FIFO can admit
            # and hand the packet straight back (one call instead of the
            # enqueue/kick/pop round trip).  AQM queues decline.
            express = self._express(pkt)
            if express is not None:
                self.busy = True
                sim = self.sim
                time = sim.now + express.size * 8.0 / self.rate_bps
                seq = sim._seq = sim._seq + 1
                event = self._tx_event
                event.time = time
                event.seq = seq
                event.args = (express,)
                self._sched_push(time, seq, event)
                return
        # Under contention the link is almost always busy when a packet
        # is admitted, so guard the kick here instead of paying a frame
        # that immediately returns.
        if self._enqueue(pkt) and not self.busy:
            self._kick()

    def _kick(self) -> None:
        if self.busy:
            return
        pkt = self._pop()
        if pkt is None:
            return
        self.busy = True
        sim = self.sim
        time = sim.now + pkt.size * 8.0 / self.rate_bps
        seq = sim._seq = sim._seq + 1
        event = self._tx_event
        event.time = time
        event.seq = seq
        event.args = (pkt,)
        self._sched_push(time, seq, event)

    def _tx_done(self, pkt: Packet) -> None:
        self.bytes_sent += pkt.size
        self.packets_sent += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "link.tx", self.sim.now,
                flow=pkt.flow, size=pkt.size, sent=self.bytes_sent,
            )
        if self._prop_push is not None:
            self._prop_push(self.sim.now + self.delay, pkt)
        else:
            self._sink_receive(pkt)
        # Inlined _kick for the completion path (it runs once per
        # transmitted packet).  The sink call above happens while the
        # link still reads as busy, exactly as in the two-step path.
        nxt = self._pop()
        if nxt is None:
            self.busy = False
            return
        sim = self.sim
        time = sim.now + nxt.size * 8.0 / self.rate_bps
        seq = sim._seq = sim._seq + 1
        event = self._tx_event
        event.time = time
        event.seq = seq
        event.args = (nxt,)
        self._sched_push(time, seq, event)

    # ------------------------------------------------------------------
    def serialization_time(self, size_bytes: int) -> float:
        """Seconds needed to put ``size_bytes`` on the wire."""
        return size_bytes * 8.0 / self.rate_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.rate_bps / 1e6:.1f}Mb/s delay={self.delay * 1e3:.2f}ms "
            f"queued={len(self.queue)}>"
        )

"""Hybrid timing-wheel scheduler backend.

The simulation's event population is bimodal: packet events
(serialisation completions, delay-line releases, ACK clocks) cluster
within one RTT of ``now``, while a thin tail of RTO and session timers
sits hundreds of milliseconds to seconds out.  A single binary heap
pays O(log n) comparisons for every member of that tail twice -- once
on push and once on pop -- and TCP's cancel/re-arm churn additionally
fills it with tombstones that every later operation wades through.

The hybrid keeps each population where it is cheapest:

* A **near heap** (plain ``heapq``) holds events due within
  ``near_slots`` wheel slots (default 256 x 1/1024 s = 0.25 s).  The
  packet path therefore runs at C speed, exactly as the pure-heap
  backend, but over a heap that never contains the far-timer tail.
* A **wheel** of ``nslots`` buckets, each ``slot_s`` wide (defaults:
  8192 slots of 1/1024 s -- an 8 s horizon at sub-millisecond grain),
  absorbs far timers with a plain ``list.append`` -- O(1), no
  comparisons.  Slot index is ``int(time * 1024.0)``; the scale is a
  power of two, so the float multiply is exact and the bucket function
  is a true monotone floor.  An RTO timer that is cancelled before its
  slot opens (the overwhelming majority) is dropped at cascade time
  without ever touching the heap.
* An **occupancy heap** of absolute slot indices records which buckets
  hold entries, so finding the next busy slot is a heap-pop, not a scan
  over empty buckets.
* An **overflow heap** takes the rare event beyond the wheel horizon.

``boundary`` is the start time of the earliest occupied slot (wheel or
overflow); every wheel/overflow entry is at or after it.  The engine's
dispatch loop pops the near heap while its head is strictly below
``boundary`` and calls :meth:`cascade_next` to merge the earliest slot
into the heap before crossing it.

**Ordering is byte-identical to the heap backend.**  The proof has two
halves.  (1) While ``cur`` (the last cascaded slot) is fixed, every
near-heap entry has slot index ``< cur + near_slots`` -- the push rule
guarantees it at push time and ``cur`` only grows -- while every newly
bucketed entry has slot ``>= cur + near_slots`` and every overflow
entry has slot ``>= cur + nslots``: nothing filed outside the heap can
ever sort before anything inside it.  (2) Before the dispatch loop pops
an entry at or past ``boundary``, the boundary slot is cascaded into
the heap, so same-instant ties across the two stores are resolved by
the heap's own ``(time, seq)`` order -- the same total order a single
heap would have produced.  Re-entrant pushes (zero-delay events,
``rearm`` with a reserved tie-break from
:meth:`~repro.sim.engine.Simulator.reserve_seq`) land in the near heap
and are ordered by the same comparison.

Cancelled events are tombstones exactly as in the heap backend: they
are skipped at dispatch, counted by the engine, and removed either by
:meth:`compact` or -- for bucketed timers -- silently at cascade time
(the engine adjusts its tombstone count by :meth:`cascade_next`'s
return value).
"""

from __future__ import annotations

import heapq
from math import inf

__all__ = [
    "TimingWheel",
    "DEFAULT_SLOT_S",
    "DEFAULT_NSLOTS",
    "DEFAULT_NEAR_SLOTS",
]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Slot width in seconds.  1/1024 s (~0.98 ms) is well under the paper's
#: 16.5 ms target RTT, so far timers spread across many buckets.  A
#: power of two keeps ``time * inv_w`` exact (no float rounding at the
#: boundary).
DEFAULT_SLOT_S = 1.0 / 1024.0

#: Wheel size (power of two).  8192 slots x 1/1024 s = an 8 s horizon,
#: which covers every recurring timer in the testbed (RTO ceilings
#: included) -- the overflow heap only sees one-shot session timers.
DEFAULT_NSLOTS = 8192

#: Near-heap horizon in slots.  256 x 1/1024 s = 0.25 s: comfortably
#: past every packet-scale event (sub-RTT) yet below the shortest RTO,
#: so packet events take the C heap and timer churn takes the buckets.
DEFAULT_NEAR_SLOTS = 256


class TimingWheel:
    """Bucketed far-timer store in front of a near-event ``heapq``.

    Entries are the engine's ``(time, seq, Event)`` tuples; the wheel
    never looks inside the Event beyond its ``cancelled`` flag.  The
    engine owns ``now`` and the tie-break sequence; the wheel owns only
    *where* an entry waits.

    Attributes:
        heap: the near heap the dispatch loop pops from.
        boundary: start time of the earliest occupied wheel/overflow
            slot (``inf`` when none) -- no wheel or overflow entry is
            earlier.  The dispatch loop must :meth:`cascade_next`
            before consuming the heap at or past this time.
    """

    __slots__ = (
        "slot_s",
        "inv_w",
        "nslots",
        "mask",
        "near",
        "near_limit",
        "slots",
        "occ",
        "cur",
        "heap",
        "boundary",
        "wheel_count",
        "overflow",
    )

    def __init__(
        self,
        slot_s: float = DEFAULT_SLOT_S,
        nslots: int = DEFAULT_NSLOTS,
        near_slots: int = DEFAULT_NEAR_SLOTS,
    ) -> None:
        if slot_s <= 0:
            raise ValueError(f"slot_s must be positive, got {slot_s}")
        if nslots < 2 or nslots & (nslots - 1):
            raise ValueError(f"nslots must be a power of two >= 2, got {nslots}")
        if not 0 < near_slots < nslots:
            raise ValueError(
                f"near_slots must be in (0, {nslots}), got {near_slots}"
            )
        self.slot_s = slot_s
        self.inv_w = 1.0 / slot_s
        self.nslots = nslots
        self.mask = nslots - 1
        self.near = near_slots
        self.slots: list[list[tuple]] = [[] for _ in range(nslots)]
        #: Min-heap of absolute slot indices that (may) hold entries.
        #: Stale indices (bucket since emptied by compaction) are
        #: skipped lazily.
        self.occ: list[int] = []
        #: The last cascaded absolute slot; only grows.
        self.cur = 0
        #: Exclusive time bound of the near region: an entry is a near
        #: event iff ``time < near_limit``.  Equivalent to the slot test
        #: ``int(time * inv_w) < cur + near`` because the slot scale is
        #: a power of two (``floor(x) < k  <=>  x < k`` for integer k),
        #: but costs one float compare on the hot push path.
        self.near_limit = near_slots * slot_s
        self.heap: list[tuple] = []
        self.boundary = inf
        #: Entries waiting in wheel buckets (excludes heap and overflow).
        self.wheel_count = 0
        self.overflow: list[tuple] = []

    @property
    def size(self) -> int:
        """Total entries held, cancelled tombstones included -- the
        hybrid analogue of ``len(heap)`` on the pure-heap backend."""
        return len(self.heap) + self.wheel_count + len(self.overflow)

    # ------------------------------------------------------------------
    def push(self, time: float, seq: int, event) -> None:
        """File ``(time, seq, event)`` for dispatch.

        Near events (within ``near`` slots of the last cascaded slot)
        go straight to the heap; far events take a bucket append; the
        rare beyond-horizon event goes to the overflow heap.  The
        engine guarantees ``time >= now``.
        """
        if time < self.near_limit:
            _heappush(self.heap, (time, seq, event))
            return
        s = int(time * self.inv_w)
        if s - self.cur < self.nslots:
            bucket = self.slots[s & self.mask]
            if not bucket:
                _heappush(self.occ, s)
                b = s * self.slot_s
                if b < self.boundary:
                    self.boundary = b
            bucket.append((time, seq, event))
            self.wheel_count += 1
        else:
            _heappush(self.overflow, (time, seq, event))
            b = s * self.slot_s
            if b < self.boundary:
                self.boundary = b

    # ------------------------------------------------------------------
    def cascade_next(self) -> int:
        """Merge the earliest occupied slot into the near heap.

        Advances ``cur`` to that slot, moves its live entries (bucket
        and same-slot overflow) onto the heap, recomputes ``boundary``,
        and returns the number of cancelled tombstones dropped on the
        way (the engine deducts them from its tombstone count).  A
        stale occupancy index just advances past itself.
        """
        occ = self.occ
        cur = self.cur
        while occ and occ[0] <= cur:
            _heappop(occ)
        ov = self.overflow
        inv_w = self.inv_w
        if occ:
            target = occ[0]
            if ov:
                s = int(ov[0][0] * inv_w)
                if s < target:
                    target = s
        elif ov:
            target = int(ov[0][0] * inv_w)
        else:
            self.boundary = inf
            return 0
        self.cur = target
        self.near_limit = (target + self.near) * self.slot_s
        heap = self.heap
        dropped = 0
        if occ and occ[0] == target:
            _heappop(occ)
            i = target & self.mask
            bucket = self.slots[i]
            self.slots[i] = []
            self.wheel_count -= len(bucket)
            for entry in bucket:
                if entry[2].cancelled:
                    dropped += 1
                else:
                    _heappush(heap, entry)
        if ov:
            # All overflow entries in the target slot: the comparison
            # boundary is exact because slot_s is a power of two.
            limit = (target + 1) * self.slot_s
            while ov and ov[0][0] < limit:
                entry = _heappop(ov)
                if entry[2].cancelled:
                    dropped += 1
                else:
                    _heappush(heap, entry)
        while occ and occ[0] <= target:
            _heappop(occ)
        boundary = occ[0] * self.slot_s if occ else inf
        if ov:
            b = int(ov[0][0] * inv_w) * self.slot_s
            if b < boundary:
                boundary = b
        self.boundary = boundary
        return dropped

    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop cancelled tombstones from every backlog region.

        The near heap is filtered and re-heapified in place (so the
        dispatch loop's alias stays valid when a callback's ``cancel``
        triggers compaction mid-run); occupied wheel buckets are
        filtered bucket by bucket -- the occupancy heap says which ones
        to visit, so the cost scales with the backlog, not the wheel
        size, and the heap is rebuilt without stale indices as a side
        effect; the overflow is filtered and re-heapified.  Relative
        order of live entries is untouched, so dispatch order is
        unchanged -- the same argument as the pure-heap backend's
        filter-plus-heapify compaction.
        """
        heap = self.heap
        heap[:] = [e for e in heap if not e[2].cancelled]
        heapq.heapify(heap)
        slots = self.slots
        mask = self.mask
        cur = self.cur
        count = 0
        occ = []
        for s in set(self.occ):
            if s <= cur:
                continue
            i = s & mask
            bucket = slots[i]
            if bucket:
                kept = [e for e in bucket if not e[2].cancelled]
                slots[i] = kept
                count += len(kept)
                if kept:
                    occ.append(s)
        heapq.heapify(occ)
        self.occ = occ
        self.wheel_count = count
        ov = [e for e in self.overflow if not e[2].cancelled]
        heapq.heapify(ov)
        self.overflow = ov
        boundary = occ[0] * self.slot_s if occ else inf
        if ov:
            b = int(ov[0][0] * self.inv_w) * self.slot_s
            if b < boundary:
                boundary = b
        self.boundary = boundary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimingWheel slot={self.slot_s * 1e3:.3f}ms x{self.nslots} "
            f"near={len(self.heap)} wheel={self.wheel_count} "
            f"overflow={len(self.overflow)}>"
        )

"""``tc netem``-style impairment stages.

The paper adds per-path delay at the router (``netem delay 4ms``) to
equalise the round-trip time of each game service and the iperf flow at
~16.5 ms.  :class:`NetemDelay` delays every packet by a fixed amount plus
optional jitter, while never reordering: a packet is released no earlier
than the packet before it, matching netem's default FIFO behaviour.

:class:`NetemLoss` is netem's random-loss knob (``netem loss 5%``),
used by the loss-resilience ablation that checks the related-work claim
(Di Domenico et al., 2021) that the streaming services tolerate several
percent of random loss.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.delayline import DelayLine
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

__all__ = ["NetemDelay", "NetemLoss"]


class NetemDelay:
    """Fixed (optionally jittered) one-way delay, order-preserving.

    The no-reordering clamp makes the stage provably FIFO, so deliveries
    ride a coalesced :class:`~repro.sim.delayline.DelayLine`: one live
    heap entry for the whole stage instead of one per packet in flight.

    Args:
        sim: the event loop.
        delay: base one-way delay in seconds.
        sink: downstream object with a ``receive(pkt)`` method.
        jitter: uniform jitter half-width in seconds (netem ``delay X Y``).
        rng: random generator used for jitter; required when jitter > 0.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        sink,
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.sim = sim
        self.delay = delay
        self.jitter = jitter
        self.rng = rng
        self.sink = sink
        self._last_release = 0.0
        self.packets_delayed = 0
        self._line = DelayLine(sim, sink.receive)
        self._sched_push = sim._push

    def receive(self, pkt: Packet) -> None:
        sim = self.sim
        delay = self.delay
        if self.jitter > 0:
            delay += self.rng.uniform(-self.jitter, self.jitter)
            if delay < 0:
                delay = 0.0
        release = sim.now + delay
        if release < self._last_release:  # no reordering
            release = self._last_release
        else:
            self._last_release = release
        self.packets_delayed += 1
        # Inlined DelayLine.push (same package): every packet crosses a
        # delay stage at least twice, and the saved frame is measurable.
        line = self._line
        seq = sim._seq = sim._seq + 1
        line._q.append((release, seq, pkt))
        if not line._armed:
            line._armed = True
            timer = line._timer
            timer.time = release
            timer.seq = seq
            self._sched_push(release, seq, timer)

    def __len__(self) -> int:
        """Packets currently traversing the delay stage."""
        return len(self._line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NetemDelay {self.delay * 1e3:.2f}ms jitter={self.jitter * 1e3:.2f}ms>"


class NetemLoss:
    """Independent random loss (``tc netem loss P%``).

    Args:
        sim: the event loop.
        loss_rate: drop probability per packet, in [0, 1).
        sink: downstream object with a ``receive(pkt)`` method.
        rng: seeded generator deciding each packet's fate.
        on_drop: optional callback for dropped packets.
    """

    def __init__(
        self,
        sim: Simulator,
        loss_rate: float,
        sink,
        rng: np.random.Generator,
        on_drop: Callable[[Packet], None] | None = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.loss_rate = loss_rate
        self.sink = sink
        self.rng = rng
        self.on_drop = on_drop
        self.drops = 0
        self.passed = 0

    def receive(self, pkt: Packet) -> None:
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(pkt)
            return
        self.passed += 1
        self.sink.receive(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NetemLoss {self.loss_rate * 100:.1f}%>"

"""Coalesced FIFO delay lines.

Several stages of the packet path are *provably order-preserving*: a
netem delay stage clamps each release to the previous one, a link's
propagation leg adds a fixed delay to strictly increasing transmission
completions, and the streaming server's pacer releases packets at a
monotonically advancing pace horizon.  Scheduling one engine event per
packet through such a stage is wasteful twice over: every packet costs
a fresh :class:`~repro.sim.engine.Event` allocation, and a
bandwidth-delay product worth of queued deliveries inflates the live
heap that every *other* push and pop must sift through.

A :class:`DelayLine` replaces that with an internal
``(release, seq, item)`` deque drained by a single self-rearming head
timer: one live heap entry per stage regardless of occupancy, and one
recycled Event object for the stage's lifetime (via
:meth:`Simulator.rearm`).

Determinism is exact, not approximate.  Each push *reserves* the
engine tie-break sequence number that per-item ``schedule_at`` would
have consumed at that same moment (:meth:`Simulator.reserve_seq`), and
the head timer is always armed with the head item's reserved number.
The heap therefore pops the timer at precisely the (time, seq) slot
the item's own event would have occupied -- so even events from
*unrelated* sources landing on the same float instant interleave
exactly as before coalescing.  That is why the timer delivers one item
per firing instead of batch-draining everything due: a batch could
leapfrog a same-instant foreign event whose reserved slot falls
between two queued items.

Ordering contract: callers must push items with non-decreasing release
times (the stages above guarantee this by construction).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.engine import Event, Simulator

__all__ = ["DelayLine"]


class DelayLine:
    """FIFO release schedule drained by one self-rearming timer.

    Args:
        sim: the event loop.
        deliver: callable invoked with each item at its release time.

    The timer is armed exactly while the line is non-empty.  ``deliver``
    may push new items into the same line re-entrantly; they are
    appended behind the items already queued (the timer owns the line
    for the whole firing, so a re-entrant push never double-arms it).
    """

    __slots__ = ("sim", "deliver", "_q", "_timer", "_armed", "_sched_push")

    def __init__(self, sim: Simulator, deliver: Callable[[Any], None]):
        self.sim = sim
        self.deliver = deliver
        self._q: deque[tuple[float, int, Any]] = deque()
        self._timer = Event(0.0, 0, self._fire, ())
        self._armed = False
        # The scheduler backend's insertion point, cached at wiring time
        # (one attribute hop per arm instead of two).
        self._sched_push = sim._push

    # Both hot methods below inline the engine's reserve_seq/rearm pair
    # (they run once per packet per stage).  The shortcuts are safe
    # because the timer is never cancelled and releases are monotone, so
    # the rearm-time validation (`time >= now`) holds by construction.

    def push(self, release: float, item: Any) -> None:
        """Queue ``item`` for delivery at ``release`` (>= previous push)."""
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        self._q.append((release, seq, item))
        if not self._armed:
            self._armed = True
            timer = self._timer
            timer.time = release
            timer.seq = seq
            self._sched_push(release, seq, timer)

    def _fire(self) -> None:
        q = self._q
        self.deliver(q.popleft()[2])
        if q:
            release, seq, _ = q[0]
            timer = self._timer
            timer.time = release
            timer.seq = seq
            self._sched_push(release, seq, timer)
        else:
            self._armed = False

    def __len__(self) -> int:
        return len(self._q)

    @property
    def next_release(self) -> float | None:
        """Release time of the head item, or None when empty."""
        return self._q[0][0] if self._q else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = self.next_release
        at = f" head@{head:.6f}" if head is not None else ""
        return f"<DelayLine {len(self._q)} queued{at}>"

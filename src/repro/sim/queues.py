"""Bottleneck queues.

The paper's router buffers packets in a drop-tail queue whose size is set
relative to the bandwidth-delay product (0.5x, 2x, or 7x BDP).  Queue depth
is what turns competing traffic into added round-trip time (Table 4) and,
when exhausted, into packet loss.

:class:`Queue` is the abstract interface shared with the AQM variants in
:mod:`repro.sim.aqm`; a :class:`~repro.sim.link.Link` drains whichever
queue it is given.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

__all__ = ["Queue", "DropTailQueue", "UnboundedQueue"]


class Queue:
    """FIFO queue interface drained by a :class:`~repro.sim.link.Link`.

    Subclasses decide the admission policy (:meth:`enqueue`) and the drain
    policy (:meth:`pop`).  Dropped packets are reported to ``on_drop`` so
    flow statistics and tests can observe loss, and every
    enqueue/dequeue/drop fires a tracepoint when a tracer is attached.
    """

    def __init__(
        self,
        sim: Simulator,
        on_drop: Callable[[Packet], None] | None = None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.on_drop = on_drop
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._fifo: deque[Packet] = deque()
        self.bytes = 0
        self.drops = 0
        self.enqueues = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def enqueue(self, pkt: Packet) -> bool:
        """Admit ``pkt``.  Returns False (and counts a drop) if refused."""
        raise NotImplementedError

    def pop(self) -> Packet | None:
        """Remove and return the next packet to transmit, or None."""
        raise NotImplementedError

    def express(self, pkt: Packet) -> Packet | None:
        """Collapsed admit-then-dequeue for an idle link, or None.

        An idle link over an empty FIFO would enqueue ``pkt`` and pop it
        straight back; plain FIFOs implement that round trip as one call
        (counters and tracepoints identical to the two-step path).  The
        base returns None -- "use the two-step path" -- which AQM queues
        keep, because their drop logic runs at dequeue time and must see
        every packet.
        """
        return None

    # Shared helpers -----------------------------------------------------
    def _admit(self, pkt: Packet) -> None:
        pkt.enqueued_at = self.sim.now
        self._fifo.append(pkt)
        self.bytes += pkt.size
        self.enqueues += 1
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.enqueue", self.sim.now,
                flow=pkt.flow, size=pkt.size, q=self.bytes,
            )

    def _drop(self, pkt: Packet) -> None:
        self.drops += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.drop", self.sim.now,
                flow=pkt.flow, size=pkt.size, q=self.bytes, drops=self.drops,
            )
        if self.on_drop is not None:
            self.on_drop(pkt)

    def _pop_fifo(self) -> Packet | None:
        if not self._fifo:
            return None
        pkt = self._fifo.popleft()
        self.bytes -= pkt.size
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.dequeue", self.sim.now,
                flow=pkt.flow, size=pkt.size, q=self.bytes,
                sojourn=self.sim.now - pkt.enqueued_at,
            )
        return pkt

    def _express_fifo(self, pkt: Packet) -> Packet:
        """Admit + immediately dequeue through an empty FIFO, in one step.

        Counters and tracepoints match :meth:`_admit` followed by
        :meth:`_pop_fifo` exactly; the deque append/popleft pair is the
        only thing skipped.  The plain-FIFO subclasses inline this body
        into :meth:`express` (their hottest path on an unsaturated
        link); this copy is the readable reference they must mirror.
        """
        now = self.sim.now
        pkt.enqueued_at = now
        self.enqueues += 1
        occupied = self.bytes + pkt.size
        if occupied > self.peak_bytes:
            self.peak_bytes = occupied
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.enqueue", now, flow=pkt.flow, size=pkt.size, q=occupied,
            )
            self.tracer.emit(
                "queue.dequeue", now,
                flow=pkt.flow, size=pkt.size, q=self.bytes, sojourn=0.0,
            )
        return pkt


class DropTailQueue(Queue):
    """Byte-limited drop-tail FIFO -- the paper's bottleneck buffer.

    A packet is dropped on arrival when admitting it would push the queue
    past ``limit_bytes``.  This matches the ``limit`` parameter of the
    ``tc tbf`` command the paper configures on its Raspberry Pi router.
    """

    def __init__(
        self,
        sim: Simulator,
        limit_bytes: int,
        on_drop: Callable[[Packet], None] | None = None,
        tracer: Tracer | None = None,
    ):
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        super().__init__(sim, on_drop, tracer)
        self.limit_bytes = limit_bytes

    def enqueue(self, pkt: Packet) -> bool:
        # Inlined _admit: under contention every packet pays this path.
        occupied = self.bytes + pkt.size
        if occupied > self.limit_bytes:
            self._drop(pkt)
            return False
        now = self.sim.now
        pkt.enqueued_at = now
        self._fifo.append(pkt)
        self.bytes = occupied
        self.enqueues += 1
        if occupied > self.peak_bytes:
            self.peak_bytes = occupied
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.enqueue", now, flow=pkt.flow, size=pkt.size, q=occupied,
            )
        return True

    # The drain policy is exactly the base FIFO pop; binding it as
    # ``pop`` saves the wrapper frame the link pays per transmission.
    pop = Queue._pop_fifo

    def express(self, pkt: Packet) -> Packet | None:
        if self._fifo or self.bytes + pkt.size > self.limit_bytes:
            return None  # occupied or refused: take the two-step path
        # Inlined _express_fifo (see its docstring).
        now = self.sim.now
        pkt.enqueued_at = now
        self.enqueues += 1
        occupied = self.bytes + pkt.size
        if occupied > self.peak_bytes:
            self.peak_bytes = occupied
        if self.tracer.enabled:
            self.tracer.emit(
                "queue.enqueue", now, flow=pkt.flow, size=pkt.size, q=occupied,
            )
            self.tracer.emit(
                "queue.dequeue", now,
                flow=pkt.flow, size=pkt.size, q=self.bytes, sojourn=0.0,
            )
        return pkt


class UnboundedQueue(Queue):
    """FIFO with no limit, for links that are never the bottleneck."""

    def enqueue(self, pkt: Packet) -> bool:
        self._admit(pkt)
        return True

    pop = Queue._pop_fifo

    def express(self, pkt: Packet) -> Packet | None:
        if self._fifo:
            return None
        return self._express_fifo(pkt)

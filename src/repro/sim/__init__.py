"""Discrete-event network simulation substrate.

This package replaces the paper's physical testbed (PCs, a 1 Gb/s switch,
and a Raspberry Pi router running ``tc``/``netem``) with a packet-level
discrete-event simulator.  The building blocks are:

- :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
- :class:`~repro.sim.packet.Packet` -- the unit of transmission.
- :class:`~repro.sim.link.Link` -- serialisation plus propagation delay.
- :class:`~repro.sim.queues.DropTailQueue` -- a byte-limited FIFO, the
  paper's drop-tail bottleneck buffer.
- :class:`~repro.sim.token_bucket.TokenBucketFilter` -- ``tc tbf``-style
  shaping (rate, burst, limit).
- :class:`~repro.sim.netem.NetemDelay` -- ``tc netem``-style added delay.
- :class:`~repro.sim.aqm.CoDelQueue` / :class:`~repro.sim.aqm.FQCoDelQueue`
  -- the AQM the paper lists as future work.
- :class:`~repro.sim.node.Tap`, :class:`~repro.sim.node.Demux` -- wiring
  helpers (trace taps and per-flow fan-out).
"""

from repro.sim.aqm import CoDelQueue, FQCoDelQueue
from repro.sim.engine import Event, Simulator
from repro.sim.flowstats import FlowStats, StatsRegistry
from repro.sim.link import Link
from repro.sim.netem import NetemDelay, NetemLoss
from repro.sim.node import Demux, PacketSink, Pipeline, Tap
from repro.sim.packet import ACK, DATA, FEEDBACK, PING, PONG, Packet
from repro.sim.queues import DropTailQueue, Queue
from repro.sim.token_bucket import TokenBucketFilter

__all__ = [
    "ACK",
    "CoDelQueue",
    "DATA",
    "Demux",
    "DropTailQueue",
    "Event",
    "FEEDBACK",
    "FQCoDelQueue",
    "FlowStats",
    "Link",
    "NetemDelay",
    "NetemLoss",
    "PING",
    "PONG",
    "Packet",
    "PacketSink",
    "Pipeline",
    "Queue",
    "Simulator",
    "StatsRegistry",
    "Tap",
    "TokenBucketFilter",
]

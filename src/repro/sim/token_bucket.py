"""Token-bucket filter, modelled on ``tc tbf``.

The paper shapes the bottleneck with::

    tc qdisc add dev eth0 parent 1: handle 2: \\
        tbf rate 15mbit burst 1mbit limit 510kbit

A token bucket accumulates tokens at ``rate`` up to ``burst`` bytes; a
packet departs immediately when enough tokens are available and otherwise
waits, FIFO, in a buffer bounded by ``limit`` bytes (drop-tail on
overflow).  With a small burst this behaves like a fixed-rate link, but
the burst allowance lets short packet trains pass unshaped -- visible as
small rate spikes, just as on real hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Event, Simulator
from repro.sim.packet import Packet

__all__ = ["TokenBucketFilter"]


class TokenBucketFilter:
    """``tbf``-style shaper: rate + burst + drop-tail byte limit.

    Args:
        sim: the event loop.
        rate_bps: token fill rate in bits per second.
        burst_bytes: bucket depth in bytes.
        limit_bytes: waiting-room size in bytes (drop-tail beyond it).
        sink: downstream object with a ``receive(pkt)`` method.
        on_drop: optional callback for dropped packets.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        burst_bytes: int,
        limit_bytes: int,
        sink,
        on_drop: Callable[[Packet], None] | None = None,
        tracer: Tracer | None = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst_bytes must be positive, got {burst_bytes}")
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit_bytes = limit_bytes
        self.sink = sink
        self.on_drop = on_drop
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self._tokens = float(burst_bytes)  # start with a full bucket
        self._last_fill = 0.0
        self._fifo: deque[Packet] = deque()
        self.bytes = 0  # bytes waiting
        self.drops = 0
        self.peak_bytes = 0
        self._timer: Event | None = None

    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        if self.bytes + pkt.size > self.limit_bytes:
            self.drops += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "tbf.drop", self.sim.now,
                    flow=pkt.flow, size=pkt.size, q=self.bytes, drops=self.drops,
                )
            if self.on_drop is not None:
                self.on_drop(pkt)
            return
        pkt.enqueued_at = self.sim.now
        self._fifo.append(pkt)
        self.bytes += pkt.size
        if self.bytes > self.peak_bytes:
            self.peak_bytes = self.bytes
        self._drain()

    # ------------------------------------------------------------------
    def _fill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_fill
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0
            )
            self._last_fill = now

    # Tolerance for float rounding when the refill timer fires at the exact
    # instant the bucket reaches the head packet's size; without it the
    # timer can re-arm with ~1e-18 s waits and spin.
    _EPSILON_BYTES = 1e-6

    def _drain(self) -> None:
        self._fill()
        while self._fifo:
            head = self._fifo[0]
            if head.size <= self._tokens + self._EPSILON_BYTES:
                self._fifo.popleft()
                self.bytes -= head.size
                self._tokens = max(0.0, self._tokens - head.size)
                if self.tracer.enabled:
                    self.tracer.emit(
                        "tbf.tx", self.sim.now,
                        flow=head.flow, size=head.size,
                        tokens=self._tokens, q=self.bytes,
                    )
                self.sink.receive(head)
            else:
                self._arm_timer(head.size)
                return
        self._disarm_timer()

    def _arm_timer(self, needed_bytes: int) -> None:
        wait = (needed_bytes - self._tokens) * 8.0 / self.rate_bps
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(wait, self._on_timer)

    def _disarm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timer(self) -> None:
        self._timer = None
        self._drain()

    def __len__(self) -> int:
        return len(self._fifo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TokenBucketFilter {self.rate_bps / 1e6:.1f}Mb/s "
            f"burst={self.burst_bytes}B queued={self.bytes}B>"
        )
